/**
 * @file
 * The decoupled vector-runahead subthread (paper Section 4.2): an
 * in-order, speculative SIMT interpreter that executes the dependent
 * chain starting at a striding load across up to 128 scalar-equivalent
 * lanes (16 AVX-512 copies), issuing every lane's loads to the real
 * memory hierarchy as runahead prefetches.
 *
 * The same engine also implements Nested Discovery Mode (Section 4.3)
 * and the Vector Runahead baseline's episode (first-lane control flow
 * with lane invalidation, spawned on a full-ROB stall).
 */

#ifndef DVR_RUNAHEAD_SUBTHREAD_HH
#define DVR_RUNAHEAD_SUBTHREAD_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/ooo_core.hh"
#include "isa/program.hh"
#include "mem/memory_system.hh"
#include "runahead/discovery.hh"
#include "runahead/reconvergence_stack.hh"
#include "runahead/stride_detector.hh"
#include "runahead/vrat.hh"

namespace dvr {

class SimMemory;

struct SubthreadConfig
{
    unsigned maxLanes = 128;        ///< scalar-equivalent lanes
    unsigned vectorWidth = 8;       ///< lanes per AVX-512 register
    unsigned vectorPorts = 2;       ///< vector uops issued per cycle
    unsigned timeoutInsts = 200;    ///< per-episode instruction cap
    unsigned reconvDepth = 8;
    unsigned vecPhysFree = 128;     ///< vector phys regs available
    unsigned intPhysFree = 64;      ///< spare integer phys regs
    bool gpuReconvergence = true;   ///< false: VR-style invalidation
    Cycle spawnOverhead = 4;        ///< VRAT init etc.
    unsigned ndmTimeout = 200;      ///< NDM outer-stride hunt budget
    unsigned nestedOuterLanes = 16;
};

/** Per-episode outcome and accounting. */
struct EpisodeStats
{
    bool ran = false;
    Cycle spawnCycle = 0;
    Cycle issueEnd = 0;     ///< last subthread uop issued
    Cycle dataEnd = 0;      ///< last lane load data returned
    uint64_t instructions = 0;
    uint64_t vectorOps = 0;
    uint64_t scalarOps = 0;
    uint64_t laneLoads = 0;         ///< scalar-equivalent loads issued
    uint64_t lanesSpawned = 0;
    uint64_t lanesFaulted = 0;
    uint64_t lanesInvalidated = 0;  ///< VR-style divergence kills
    uint64_t lanesDropped = 0;      ///< reconvergence-stack overflow
    uint64_t reconvPushes = 0;
    bool vratExhausted = false;
    bool timedOut = false;
    bool nested = false;
    uint64_t nestedInnerLanes = 0;
    unsigned peakVecRegs = 0;
    /** Why the VR-style scalar hunt ended (diagnostic). */
    enum class HuntExit : uint8_t {
        kNone, kFound, kTimeout, kHalt, kFault, kCompleted,
        kInvalidBase,
    } huntExit = HuntExit::kNone;
};

/**
 * Prefetch-frontier cursor: the address range of striding-load lanes
 * already covered by earlier episodes of the same trigger. New
 * episodes start their lanes past the frontier instead of re-issuing
 * the overlap (lanes "start masked out", Section 4.2.2).
 */
struct CoverageCursor
{
    bool valid = false;
    Addr from = 0;
    Addr to = 0;
};

class VectorSubthread
{
  public:
    VectorSubthread(const SubthreadConfig &cfg, const Program &prog,
                    const SimMemory &mem, MemorySystem &memsys);

    /**
     * Normal DVR episode: vectorize the discovered chain across
     * `lanes` future iterations starting at the spawn address.
     * `cursor`, when given, suppresses lanes before the frontier and
     * is advanced past the lanes this episode covers.
     */
    EpisodeStats runVectorized(const DiscoveryResult &d,
                               const RegState &regs, Cycle spawn,
                               unsigned lanes,
                               CoverageCursor *cursor = nullptr);

    /**
     * Nested episode: NDM scalar walk past the inner loop, 16-lane
     * outer vectorization, then expansion to up to 128 inner lanes.
     * Falls back to runVectorized when no outer stride is found.
     * `cursor` tracks the *outer* striding load's frontier.
     */
    EpisodeStats runNested(const DiscoveryResult &d,
                           const RegState &regs, Cycle spawn,
                           const StrideDetector &detector,
                           CoverageCursor *cursor = nullptr);

    /**
     * Vector Runahead baseline episode: scalar walk from the stall
     * point until a confident striding load is met, then 128-lane
     * vectorization with first-lane control flow. Registers whose
     * ready time is after `spawn` are invalid (their producers are
     * still in flight at the stall).
     */
    EpisodeStats runVrStyle(InstPc start_pc, const RegState &regs,
                            Cycle spawn, const StrideDetector &detector,
                            unsigned scalar_budget);

  private:
    /**
     * Subthread register: scalar or per-lane values. Vector registers
     * carry per-lane readiness times: vector copies issue as their own
     * inputs return (wavefront pipelining across chain levels), rather
     * than barriering every lane on the slowest one.
     *
     * Struct-of-arrays: per-lane values/readiness live in the flat
     * laneVals_/laneReady_ buffers (kMaxLanes stride per register);
     * the SReg itself is POD bookkeeping. `fill` is the live lane
     * count — the equivalent of the old per-register vector's size —
     * and writeVector reproduces vector assign/resize semantics on it
     * exactly (grow appends the current scalar, shrink truncates).
     */
    struct SReg
    {
        bool vec = false;
        bool valid = true;      ///< scalar-validity (VR invalid regs)
        uint64_t scalar = 0;
        Cycle ready = 0;        ///< scalar readiness
        uint32_t fill = 0;      ///< live lanes in the lane buffers
    };

    /** Chain-walk parameters. */
    struct TermSpec
    {
        InstPc flrPc = kInvalidPc;          ///< stop after this pc
        InstPc stopBeforePc = kInvalidPc;   ///< stop before this pc
        InstPc forcedNotTakenPc = kInvalidPc;
        unsigned timeout = 200;
        bool reconverge = true;
        const StrideDetector *huntDetector = nullptr;
        InstPc huntLimitPc = kInvalidPc;    ///< loads below qualify
        /**
         * NDM phase 2: vectorize *every* confident striding load met
         * on the way to the inner loop ("the process of vectorization
         * continues for the dependents of each outer striding load",
         * Section 4.3.1), e.g. both offs[row] and offs[row+1].
         */
        const StrideDetector *vectorizeDetector = nullptr;
        InstPc vectorizeLimitPc = kInvalidPc;
    };

    enum class ChainExit : uint8_t {
        kCompleted,
        kTimeout,
        kVratFull,
        kHalt,
        kFoundStride,   ///< hunt mode: pcv_ is the striding load
        kFault,
    };

    void initRegs(const RegState &regs, Cycle spawn, Cycle valid_after);
    void resetEpisode(unsigned lanes, Cycle spawn);

    /**
     * Advance a seed base past an existing coverage cursor.
     * @return iterations to skip; lanes_avail is reduced accordingly
     *         (0 means the whole window is already covered).
     */
    static uint64_t applyCursor(CoverageCursor *cursor, Addr base,
                                int64_t stride, uint64_t &lanes_avail);

    /** Record the lanes an episode covered into the cursor. */
    static void advanceCursor(CoverageCursor *cursor, Addr first,
                              int64_t stride, unsigned lanes);

    /** Lane-value row of a register in the flat SoA buffer. */
    uint64_t *lanesOf(RegId r)
    {
        return laneVals_ + size_t(r) * kMaxLanes;
    }
    const uint64_t *lanesOf(RegId r) const
    {
        return laneVals_ + size_t(r) * kMaxLanes;
    }
    /** Lane-readiness row of a register. */
    Cycle *laneReadyArr(RegId r)
    {
        return laneReady_ + size_t(r) * kMaxLanes;
    }
    const Cycle *laneReadyArr(RegId r) const
    {
        return laneReady_ + size_t(r) * kMaxLanes;
    }

    uint64_t laneVal(RegId rid, unsigned lane) const
    {
        const SReg &r = r_[rid];
        return r.vec ? lanesOf(rid)[lane] : r.scalar;
    }

    /** Per-lane readiness of a register (scalar broadcasts). */
    Cycle laneReadyOf(RegId rid, unsigned lane) const
    {
        const SReg &r = r_[rid];
        return r.vec ? laneReadyArr(rid)[lane] : r.ready;
    }

    /** Broadcast-then-write a lane value set under a mask. */
    bool writeVector(RegId rd, const uint64_t *vals,
                     const LaneMask &mask, const Cycle *ready);
    bool writeScalar(RegId rd, uint64_t v, bool valid, Cycle ready);

    /** Execute from pcv_ until a termination condition; see TermSpec. */
    ChainExit execChain(const TermSpec &t);

    /**
     * Issue per-lane loads for the instruction at pcv_. Each lane's
     * access waits for that lane's own input readiness.
     * @return the cycle the last copy issued (the in-order VIR
     *         fetches the next instruction only after this).
     */
    Cycle issueLaneLoads(const Addr *addrs, const LaneMask &mask,
                         uint32_t bytes, Cycle issue_start,
                         const Cycle *earliest, uint64_t *vals_out,
                         Cycle *done_out, LaneMask &fault_out);

    const SubthreadConfig cfg_;
    const Program &prog_;
    const SimMemory &mem_;
    MemorySystem &memsys_;

    std::array<SReg, kNumArchRegs> r_;
    // Flat per-register lane buffers (kNumArchRegs x kMaxLanes) and
    // episode scratch, all arena-backed and reused across episodes —
    // an episode performs zero heap allocations.
    uint64_t *laneVals_;
    Cycle *laneReady_;
    uint64_t *chainVals_;       ///< execChain per-lane results
    Addr *chainAddrs_;          ///< execChain per-lane addresses
    Cycle *chainReady_;         ///< execChain per-lane input readiness
    Cycle *chainDone_;          ///< execChain per-lane completion
    Addr *seedAddrs_;           ///< seed lane addresses (numLanes_ live)
    unsigned *outerOf_;         ///< inner lane -> outer lane
    uint64_t *expandVals_;      ///< runNested expansion staging
    Cycle *expandReady_;
    unsigned numLanes_ = 0;
    LaneMask active_;
    LaneMask faulted_;
    LaneMask arrived_;      ///< lanes that reached stopBeforePc
    ReconvergenceStack stack_;
    Vrat vrat_;
    InstPc pcv_ = kInvalidPc;
    int64_t strideVecStride_ = 0;   ///< stride of an NDM secondary seed
    Cycle curIssue_ = 0;
    Cycle dataEnd_ = 0;
    EpisodeStats st_;

    /** One-shot vector seed consumed at its PC (the striding load).
     *  Lane addresses live in seedAddrs_ ([0, numLanes_) valid). */
    struct Seed
    {
        bool pending = false;
        InstPc pc = kInvalidPc;
        RegId dest = 0;
        uint32_t bytes = 8;
    } seed_;
};

} // namespace dvr

#endif // DVR_RUNAHEAD_SUBTHREAD_HH
