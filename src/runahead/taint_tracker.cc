#include "runahead/taint_tracker.hh"

namespace dvr {

void
TaintTracker::reset(RegId seed)
{
    mask_ = static_cast<uint16_t>(1u << seed);
}

bool
TaintTracker::observe(const Instruction &inst)
{
    bool src_tainted = false;
    const int n = inst.numSrcs();
    if (n >= 1 && isTainted(inst.rs1))
        src_tainted = true;
    if (n >= 2 && isTainted(inst.rs2))
        src_tainted = true;

    if (inst.hasDest()) {
        if (src_tainted) {
            mask_ |= static_cast<uint16_t>(1u << inst.rd);
        } else {
            // Overwrite from untainted sources kills the taint.
            mask_ &= static_cast<uint16_t>(~(1u << inst.rd));
        }
    }
    return src_tainted;
}

} // namespace dvr
