#include "runahead/vrat.hh"

namespace dvr {

Vrat::Vrat(unsigned vec_phys_free, unsigned int_phys_free,
           unsigned copies)
    : vecFreeTotal_(vec_phys_free), intFreeTotal_(int_phys_free),
      copies_(copies)
{
    reset();
}

void
Vrat::reset()
{
    isVec_.fill(false);
    mapped_.fill(false);
    vecInUse_ = 0;
    // Decoupling copy: every arch register gets a fresh scalar.
    intInUse_ = kNumArchRegs;
    peakVec_ = 0;
    for (auto &m : mapped_)
        m = true;
}

void
Vrat::release(RegId r)
{
    if (!mapped_[r])
        return;
    if (isVec_[r])
        vecInUse_ -= copies_;
    else if (intInUse_ > 0)
        --intInUse_;
    mapped_[r] = false;
    isVec_[r] = false;
}

bool
Vrat::vectorize(RegId r)
{
    if (mapped_[r] && isVec_[r])
        return true;    // in-order subthread: reuse the group
    if (vecInUse_ + copies_ > vecFreeTotal_)
        return false;
    release(r);
    isVec_[r] = true;
    mapped_[r] = true;
    vecInUse_ += copies_;
    if (vecInUse_ > peakVec_)
        peakVec_ = vecInUse_;
    return true;
}

bool
Vrat::scalarize(RegId r)
{
    if (mapped_[r] && !isVec_[r])
        return true;
    if (intInUse_ + 1 > intFreeTotal_)
        return false;
    release(r);
    isVec_[r] = false;
    mapped_[r] = true;
    ++intInUse_;
    return true;
}

} // namespace dvr
