#include "runahead/reconvergence_stack.hh"

namespace dvr {

ReconvergenceStack::ReconvergenceStack(unsigned depth)
    : depth_(depth)
{
    stack_.reserve(depth);
}

} // namespace dvr
