#include "runahead/reconvergence_stack.hh"

#include "common/log.hh"

namespace dvr {

ReconvergenceStack::ReconvergenceStack(unsigned depth)
    : depth_(depth)
{
    stack_.reserve(depth);
}

bool
ReconvergenceStack::push(InstPc pc, const LaneMask &mask)
{
    if (stack_.size() >= depth_) {
        ++overflowDrops;
        return false;
    }
    stack_.push_back({pc, mask});
    ++pushes;
    return true;
}

ReconvergenceStack::Entry
ReconvergenceStack::pop()
{
    panicIf(stack_.empty(), "ReconvergenceStack: pop on empty stack");
    Entry e = stack_.back();
    stack_.pop_back();
    return e;
}

} // namespace dvr
