/**
 * @file
 * Vector Taint Tracker (VTT): one bit per architectural integer
 * register. Seeded with the striding load's destination at Discovery
 * Mode entry; taint propagates transitively through register dataflow
 * and is killed when a tainted register is overwritten from untainted
 * sources. Registers tainted here are the ones the subthread will
 * vectorize.
 */

#ifndef DVR_RUNAHEAD_TAINT_TRACKER_HH
#define DVR_RUNAHEAD_TAINT_TRACKER_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace dvr {

class TaintTracker
{
  public:
    /** Reset all taint and seed the given destination register. */
    void reset(RegId seed);

    /** Clear everything (no seed). */
    void clear() { mask_ = 0; }

    /**
     * Propagate taint through one retired instruction.
     * @return true when at least one *source* of the instruction was
     *         tainted (i.e. the instruction is part of the dependent
     *         chain and would be vectorized).
     */
    bool observe(const Instruction &inst);

    bool isTainted(RegId r) const { return (mask_ >> r) & 1; }
    uint16_t mask() const { return mask_; }

  private:
    uint16_t mask_ = 0;
};

} // namespace dvr

#endif // DVR_RUNAHEAD_TAINT_TRACKER_HH
