#include "runahead/loop_bound.hh"

namespace dvr {

void
LoopBoundDetector::begin(InstPc stride_pc, const RegState &regs)
{
    stridePc_ = stride_pc;
    flr_ = kInvalidPc;
    lcr_ = LcrInfo();
    sbb_ = false;
    divergentChain_ = false;
    backwardBranchPc_ = kInvalidPc;
    entry_ = regs;
}

void
LoopBoundDetector::noteFinalLoad(InstPc load_pc)
{
    flr_ = load_pc;
    // Paper: "LCR and SBB ... are zeroed whenever we update the FLR".
    lcr_ = LcrInfo();
    sbb_ = false;
    divergentChain_ = false;
}

void
LoopBoundDetector::observe(InstPc pc, const Instruction &inst)
{
    if (inst.isCompare() && !sbb_) {
        lcr_.valid = true;
        lcr_.cmpOp = inst.op;
        lcr_.rs1 = inst.rs1;
        lcr_.rs2 = inst.rs2;
        lcr_.rd = inst.rd;
        lcr_.imm = inst.imm;
        lcr_.isImmCompare = inst.numSrcs() == 1;
        return;
    }
    if (inst.isCondBranch()) {
        const bool backward = lcr_.valid && inst.rs1 == lcr_.rd &&
                              inst.target <= stridePc_;
        if (backward && !sbb_) {
            sbb_ = true;
            backwardBranchPc_ = pc;
            lcr_.branchOp = inst.op;
        } else if (!sbb_ && flr_ != kInvalidPc) {
            // A non-loop-closing branch between the final load and
            // the loop branch: the chain has divergent control flow.
            divergentChain_ = true;
        }
    }
}

int64_t
remainingIterations(const LcrInfo &lcr, uint64_t induction,
                    uint64_t bound, int64_t increment)
{
    if (!lcr.valid || increment == 0)
        return -1;

    // The backward branch keeps looping while it is taken (kBnez) or
    // not taken (kBeqz is unusual for loop-closing; handle anyway by
    // inverting the compare sense).
    const bool loop_while_true = lcr.branchOp == Opcode::kBnez;

    const auto si = static_cast<int64_t>(induction);
    const auto sb = static_cast<int64_t>(bound);

    switch (lcr.cmpOp) {
      case Opcode::kCmpLt:
      case Opcode::kCmpLtI:
        if (loop_while_true && increment > 0 && si < sb)
            return (sb - si + increment - 1) / increment;
        return loop_while_true ? 0 : -1;
      case Opcode::kCmpLtU:
      case Opcode::kCmpLtUI:
        if (loop_while_true && increment > 0 && induction < bound) {
            const uint64_t diff = bound - induction;
            const auto inc = static_cast<uint64_t>(increment);
            return static_cast<int64_t>((diff + inc - 1) / inc);
        }
        return loop_while_true ? 0 : -1;
      case Opcode::kCmpNe:
        if (loop_while_true) {
            const int64_t diff = sb - si;
            if (increment != 0 && diff % increment == 0 &&
                diff / increment >= 0) {
                return diff / increment;
            }
        }
        return -1;
      case Opcode::kCmpEq:
      case Opcode::kCmpEqI:
        // "loop while i != n" compiled as cmpeq + beqz.
        if (!loop_while_true) {
            const int64_t diff = sb - si;
            if (increment != 0 && diff % increment == 0 &&
                diff / increment >= 0) {
                return diff / increment;
            }
        }
        return -1;
      default:
        return -1;
    }
}

LoopBoundResult
LoopBoundDetector::finish(const RegState &exit_regs) const
{
    LoopBoundResult r;
    if (!lcr_.valid || !sbb_)
        return r;

    // Identify the constant and the changing compare input across the
    // Discovery interval.
    RegId induction;
    uint64_t bound;
    if (lcr_.isImmCompare) {
        if (entry_.value[lcr_.rs1] == exit_regs.value[lcr_.rs1])
            return r;       // induction input did not move
        induction = lcr_.rs1;
        bound = static_cast<uint64_t>(lcr_.imm);
    } else {
        const bool c1 = entry_.value[lcr_.rs1] == exit_regs.value[lcr_.rs1];
        const bool c2 = entry_.value[lcr_.rs2] == exit_regs.value[lcr_.rs2];
        if (c1 == c2)
            return r;       // both moved or both constant: no match
        induction = c1 ? lcr_.rs2 : lcr_.rs1;
        bound = c1 ? entry_.value[lcr_.rs1] : entry_.value[lcr_.rs2];
        if (induction != lcr_.rs1) {
            // Only the "induction < bound" orientation is inferred;
            // a moving right-hand side is not a shape we can bound.
            if (lcr_.cmpOp != Opcode::kCmpNe &&
                lcr_.cmpOp != Opcode::kCmpEq) {
                return r;
            }
        }
    }

    const int64_t increment =
        static_cast<int64_t>(exit_regs.value[induction]) -
        static_cast<int64_t>(entry_.value[induction]);
    const int64_t rem = remainingIterations(
        lcr_, exit_regs.value[induction], bound, increment);
    if (rem < 0)
        return r;

    r.valid = true;
    r.remaining = rem;
    r.increment = increment;
    r.inductionReg = induction;
    r.boundValue = bound;
    return r;
}

} // namespace dvr
