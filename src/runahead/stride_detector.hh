/**
 * @file
 * 32-entry Reference Prediction Table (RPT) stride detector (Chen &
 * Baer style), as used by DVR to find candidate striding loads. Each
 * entry keeps the load PC, previous address, stride, a 2-bit
 * saturating confidence counter, and the innermost/seen-in-discovery
 * bit used by Discovery Mode's innermost-stride switching.
 */

#ifndef DVR_RUNAHEAD_STRIDE_DETECTOR_HH
#define DVR_RUNAHEAD_STRIDE_DETECTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dvr {

struct StrideEntry
{
    InstPc pc = kInvalidPc;
    Addr lastAddr = 0;
    int64_t stride = 0;
    uint8_t confidence = 0;         ///< 2-bit saturating
    bool seenInDiscovery = false;   ///< the per-entry discovery bit
    uint64_t lruStamp = 0;

    bool confident() const { return confidence >= 2 && stride != 0; }
};

class StrideDetector
{
  public:
    explicit StrideDetector(unsigned entries = 32);

    /**
     * Train on a retired load.
     * @return the entry if the load is (now) a confident strider,
     *         nullptr otherwise.
     */
    const StrideEntry *observe(InstPc pc, Addr addr);

    /** Find the entry for a PC (or nullptr). */
    const StrideEntry *find(InstPc pc) const;

    /** Clear all seen-in-discovery bits (Discovery Mode entry). */
    void clearDiscoveryBits();

    /**
     * Mark a confident strider as seen during Discovery Mode.
     * @return true when it had already been seen (i.e. this is the
     *         second occurrence: the stride is more inner than the
     *         current discovery trigger).
     */
    bool markSeenInDiscovery(InstPc pc);

    unsigned entries() const
    {
        return static_cast<unsigned>(table_.size());
    }

  private:
    std::vector<StrideEntry> table_;
    uint64_t nextStamp_ = 1;
};

} // namespace dvr

#endif // DVR_RUNAHEAD_STRIDE_DETECTOR_HH
