/**
 * @file
 * The Decoupled Vector Runahead controller: glues the stride detector,
 * Discovery Mode, and the vector-runahead subthread to the core's
 * retire stream. Entirely decoupled from full-ROB stalls -- episodes
 * spawn whenever a discovered striding load comes around again, and
 * the main thread keeps running.
 *
 * Feature toggles reproduce the Figure 8 breakdown:
 *   - discovery=false, nested=false  -> "Offload" (VR on a subthread)
 *   - discovery=true,  nested=false  -> "+ Discovery Mode"
 *   - discovery=true,  nested=true   -> full DVR
 */

#ifndef DVR_RUNAHEAD_DVR_CONTROLLER_HH
#define DVR_RUNAHEAD_DVR_CONTROLLER_HH

#include <cstdint>
#include <unordered_map>

#include "common/stats.hh"
#include "core/ooo_core.hh"
#include "runahead/discovery.hh"
#include "runahead/stride_detector.hh"
#include "runahead/subthread.hh"
#include "runahead/technique.hh"

namespace dvr {

struct DvrConfig
{
    SubthreadConfig subthread;
    bool discoveryEnabled = true;
    bool nestedEnabled = true;
    /** Bound below which Nested Vector Runahead engages (Sec 4.3.1). */
    unsigned nestedThreshold = 64;
    /** Retire-count cooldown after a chain-less discovery. */
    uint64_t rejectCooldown = 4096;
};

struct DvrStats
{
    uint64_t discoveries = 0;
    uint64_t discoverySwitches = 0;
    uint64_t discoveryAborts = 0;
    uint64_t noChainSkips = 0;
    uint64_t episodes = 0;
    uint64_t nestedEpisodes = 0;
    uint64_t vectorOps = 0;
    uint64_t laneLoads = 0;
    uint64_t lanesSpawned = 0;
    uint64_t lanesFaulted = 0;
    uint64_t lanesDropped = 0;
    uint64_t reconvPushes = 0;
    uint64_t vratExhausts = 0;
    uint64_t timeouts = 0;

    StatSet toStatSet() const;
};

class DvrController : public RunaheadTechnique
{
  public:
    /**
     * `name` distinguishes the Figure 8 feature-breakdown variants
     * ("dvr-offload", "dvr-discovery") sharing this class.
     */
    DvrController(const DvrConfig &cfg, const Program &prog,
                  const SimMemory &mem, MemorySystem &memsys,
                  const char *name = "dvr");

    /** The core must be attached before the run starts. */
    void attachCore(const OooCore &core) { core_ = &core; }

    const char *name() const override { return name_; }
    const char *statPrefix() const override { return "dvr."; }
    void attach(OooCore &core) override { attachCore(core); }
    void finalizeStats(StatSet &out) const override
    {
        out.merge(statPrefix(), stats_.toStatSet());
    }

    void onRetire(const RetireInfo &ri) override;

    const DvrStats &stats() const { return stats_; }
    const StrideDetector &detector() const { return detector_; }

  private:
    void spawnEpisode(const DiscoveryResult &d, const RetireInfo &ri);
    void spawnOffloadEpisode(const StrideEntry &e, const RetireInfo &ri);
    void accumulate(const EpisodeStats &ep);

    const DvrConfig cfg_;
    const char *name_;
    const OooCore *core_ = nullptr;
    StrideDetector detector_;
    DiscoveryMode discovery_;
    VectorSubthread subthread_;
    DvrStats stats_;
    bool inDiscovery_ = false;
    Cycle episodeEndCycle_ = 0;
    /** PC -> retire seq before which we won't re-discover it. */
    std::unordered_map<InstPc, uint64_t> cooldown_;
    /** PC -> inner-seed frontier of plain vectorized episodes. */
    std::unordered_map<InstPc, CoverageCursor> coverageInner_;
    /** PC -> outer-stride frontier of nested episodes. */
    std::unordered_map<InstPc, CoverageCursor> coverageOuter_;
};

} // namespace dvr

#endif // DVR_RUNAHEAD_DVR_CONTROLLER_HH
