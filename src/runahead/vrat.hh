/**
 * @file
 * Vector Register Allocation Table (VRAT) bookkeeping. The subthread
 * shares the physical scalar and vector register files with the main
 * thread; the VRAT tracks, per architectural register, whether the
 * subthread's mapping is a single scalar physical register or a group
 * of vector physical registers (16 AVX-512 registers for 128 lanes).
 * Running out of free vector physical registers terminates an episode
 * (this is what bounds DVR at 128 lanes in the paper).
 */

#ifndef DVR_RUNAHEAD_VRAT_HH
#define DVR_RUNAHEAD_VRAT_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace dvr {

class Vrat
{
  public:
    /**
     * @param vec_phys_free vector physical registers the subthread may
     *        claim (file size minus main-thread usage)
     * @param int_phys_free spare integer physical registers
     * @param copies vector registers per vectorized arch register
     */
    Vrat(unsigned vec_phys_free, unsigned int_phys_free,
         unsigned copies);

    /** Map every architectural register to a fresh scalar phys reg. */
    void reset();

    /**
     * Rename r to a group of vector physical registers (frees a prior
     * mapping of r first).
     * @return false when the free list cannot supply the group.
     */
    bool vectorize(RegId r);

    /** WAW overwrite by a scalar: rename r back to a scalar reg. */
    bool scalarize(RegId r);

    bool isVector(RegId r) const { return isVec_[r]; }
    unsigned vecInUse() const { return vecInUse_; }
    unsigned peakVecInUse() const { return peakVec_; }
    unsigned intInUse() const { return intInUse_; }

  private:
    void release(RegId r);

    unsigned vecFreeTotal_;
    unsigned intFreeTotal_;
    unsigned copies_;
    unsigned vecInUse_ = 0;
    unsigned intInUse_ = 0;
    unsigned peakVec_ = 0;
    std::array<bool, kNumArchRegs> isVec_{};
    std::array<bool, kNumArchRegs> mapped_{};
};

} // namespace dvr

#endif // DVR_RUNAHEAD_VRAT_HH
