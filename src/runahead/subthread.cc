#include "runahead/subthread.hh"

#include <algorithm>

#include "common/arena.hh"
#include "common/log.hh"
#include "mem/sim_memory.hh"
#include "sim/trace.hh"

namespace dvr {

namespace {

LaneMask
fullMask(unsigned lanes)
{
    LaneMask m;
    for (unsigned i = 0; i < lanes; ++i)
        m.set(i);
    return m;
}

unsigned
firstLane(const LaneMask &m)
{
    for (unsigned i = 0; i < kMaxLanes; ++i) {
        if (m.test(i))
            return i;
    }
    return kMaxLanes;
}

} // namespace

VectorSubthread::VectorSubthread(const SubthreadConfig &cfg,
                                 const Program &prog,
                                 const SimMemory &mem,
                                 MemorySystem &memsys)
    : cfg_(cfg), prog_(prog), mem_(mem), memsys_(memsys),
      stack_(cfg.reconvDepth),
      vrat_(cfg.vecPhysFree, cfg.intPhysFree,
            (cfg.maxLanes + cfg.vectorWidth - 1) / cfg.vectorWidth)
{
    panicIf(cfg.maxLanes == 0 || cfg.maxLanes > kMaxLanes,
            "SubthreadConfig: bad lane count");
    // All lane state and episode scratch comes off the per-thread
    // arena once, at subthread construction; episodes then run
    // allocation-free.
    Arena &arena = Arena::forCurrentThread();
    constexpr size_t kLaneSlots = size_t(kNumArchRegs) * kMaxLanes;
    laneVals_ = arena.allocArray<uint64_t>(kLaneSlots);
    laneReady_ = arena.allocArray<Cycle>(kLaneSlots);
    chainVals_ = arena.allocArray<uint64_t>(kMaxLanes);
    chainAddrs_ = arena.allocArray<Addr>(kMaxLanes);
    chainReady_ = arena.allocArray<Cycle>(kMaxLanes);
    chainDone_ = arena.allocArray<Cycle>(kMaxLanes);
    seedAddrs_ = arena.allocArray<Addr>(kMaxLanes);
    outerOf_ = arena.allocArray<unsigned>(kMaxLanes);
    expandVals_ = arena.allocArray<uint64_t>(kMaxLanes);
    expandReady_ = arena.allocArray<Cycle>(kMaxLanes);
}

void
VectorSubthread::initRegs(const RegState &regs, Cycle spawn,
                          Cycle valid_after)
{
    for (int i = 0; i < kNumArchRegs; ++i) {
        r_[i] = SReg();
        r_[i].scalar = regs.value[i];
        // A register is usable in runahead when its value arrives
        // within the interval (ALU chains resolve in a few cycles;
        // only DRAM-bound values stay invalid).
        r_[i].valid = regs.ready[i] <= valid_after;
        r_[i].ready =
            r_[i].valid ? std::max(spawn, regs.ready[i]) : spawn;
    }
}

void
VectorSubthread::resetEpisode(unsigned lanes, Cycle spawn)
{
    st_ = EpisodeStats();
    st_.ran = true;
    st_.spawnCycle = spawn;
    st_.lanesSpawned = lanes;
    numLanes_ = lanes;
    active_ = fullMask(lanes);
    faulted_.reset();
    arrived_.reset();
    stack_.clear();
    stack_.pushes = 0;
    stack_.overflowDrops = 0;
    vrat_.reset();
    curIssue_ = spawn + cfg_.spawnOverhead;
    dataEnd_ = spawn;
    seed_ = Seed();
}

bool
VectorSubthread::writeVector(RegId rd, const uint64_t *vals,
                             const LaneMask &mask, const Cycle *ready)
{
    SReg &r = r_[rd];
    uint64_t *lanes = lanesOf(rd);
    Cycle *lready = laneReadyArr(rd);
    if (!r.vec) {
        if (!vrat_.vectorize(rd)) {
            st_.vratExhausted = true;
            return false;
        }
        // Broadcast the old scalar into inactive lanes.
        std::fill(lanes, lanes + numLanes_, r.scalar);
        std::fill(lready, lready + numLanes_, r.ready);
        r.fill = numLanes_;
        r.vec = true;
    } else if (r.fill != numLanes_) {
        // Lane-count change mid-episode: grow appends the current
        // scalar (vector::resize semantics), shrink truncates.
        for (uint32_t i = r.fill; i < numLanes_; ++i) {
            lanes[i] = r.scalar;
            lready[i] = r.ready;
        }
        r.fill = numLanes_;
    }
    for (unsigned i = 0; i < numLanes_; ++i) {
        if (mask.test(i)) {
            lanes[i] = vals[i];
            lready[i] = ready[i];
        }
    }
    r.valid = true;
    return true;
}

bool
VectorSubthread::writeScalar(RegId rd, uint64_t v, bool valid,
                             Cycle ready)
{
    SReg &r = r_[rd];
    if (r.vec && !vrat_.scalarize(rd)) {
        st_.vratExhausted = true;
        return false;
    }
    r.vec = false;
    r.fill = 0;
    r.scalar = v;
    r.valid = valid;
    r.ready = ready;
    return true;
}

Cycle
VectorSubthread::issueLaneLoads(const Addr *addrs, const LaneMask &mask,
                                uint32_t bytes, Cycle issue_start,
                                const Cycle *earliest,
                                uint64_t *vals_out, Cycle *done_out,
                                LaneMask &fault_out)
{
    // Vectorized loads are split into scalar accesses in the LSQ and
    // sent to the cache hierarchy individually (Section 4.2.2); the
    // gather copies issue over the vector ports, each copy as soon as
    // its own address input has returned (wavefront pipelining).
    const unsigned per_cycle = cfg_.vectorWidth * cfg_.vectorPorts;
    unsigned nth = 0;
    Cycle max_issue = issue_start;
    for (unsigned i = 0; i < numLanes_; ++i) {
        if (!mask.test(i))
            continue;
        uint64_t v = 0;
        if (!mem_.tryRead(addrs[i], bytes, v)) {
            fault_out.set(i);
            ++st_.lanesFaulted;
            continue;
        }
        const Cycle at = std::max(earliest[i], issue_start) + 1 +
                         nth / per_cycle;
        ++nth;
        max_issue = std::max(max_issue, at);
        const MemAccess ma = memsys_.access(addrs[i], bytes, at, false,
                                            Requester::kRunahead, pcv_,
                                            v);
        vals_out[i] = v;
        done_out[i] = ma.done;
        dataEnd_ = std::max(dataEnd_, ma.done);
        ++st_.laneLoads;
    }
    return max_issue;
}

VectorSubthread::ChainExit
VectorSubthread::execChain(const TermSpec &t)
{
    const uint64_t insts_at_entry = st_.instructions;
    // Per-lane scratch: arena-backed members (execChain is never
    // re-entered), reused across chains with [0, numLanes_) live.
    uint64_t *const vals = chainVals_;
    Addr *const addrs = chainAddrs_;
    Cycle *const lane_ready = chainReady_;
    Cycle *const done = chainDone_;

    auto pop_group = [&]() -> bool {
        while (!stack_.empty()) {
            auto e = stack_.pop();
            const LaneMask m = e.mask & ~faulted_;
            if (m.any()) {
                pcv_ = e.pc;
                active_ = m;
                Trace::emit(TraceCat::kReconvergence, curIssue_, e.pc,
                            m.count());
                return true;
            }
        }
        return false;
    };

    while (true) {
        if (st_.instructions - insts_at_entry >= t.timeout) {
            st_.timedOut = true;
            return ChainExit::kTimeout;
        }
        LaneMask m = active_ & ~faulted_;
        if (m.none()) {
            if (!pop_group())
                return ChainExit::kCompleted;
            continue;
        }
        if (!prog_.valid(pcv_))
            return ChainExit::kFault;

        // Stop *before* re-executing the striding load (next loop
        // iteration) -- but not on the episode's very first fetch.
        if (pcv_ == t.stopBeforePc &&
            st_.instructions > insts_at_entry) {
            arrived_ |= m;
            active_.reset();
            if (!pop_group())
                return ChainExit::kCompleted;
            continue;
        }

        const Instruction &inst = prog_.at(pcv_);

        if (inst.op == Opcode::kHalt)
            return ChainExit::kHalt;

        // Hunt mode (NDM / VR): stop before a confident striding load
        // whose PC is below the limit (more outer than the inner one).
        if (t.huntDetector && inst.isLoad() &&
            !(seed_.pending && pcv_ == seed_.pc)) {
            const StrideEntry *e = t.huntDetector->find(pcv_);
            if (e && e->confident() &&
                (t.huntLimitPc == kInvalidPc || pcv_ < t.huntLimitPc)) {
                return ChainExit::kFoundStride;
            }
        }

        ++st_.instructions;

        const int nsrcs = inst.numSrcs();
        const bool s1_vec = nsrcs >= 1 && r_[inst.rs1].vec;
        const bool s2_vec = nsrcs >= 2 && r_[inst.rs2].vec;
        const bool seeding = seed_.pending && pcv_ == seed_.pc;
        // NDM phase 2: a further confident striding load with a
        // scalar base gets vectorized by its own stride too.
        bool stride_vec = false;
        if (!seeding && t.vectorizeDetector && inst.isLoad() &&
            !s1_vec && r_[inst.rs1].valid &&
            (t.vectorizeLimitPc == kInvalidPc ||
             pcv_ < t.vectorizeLimitPc)) {
            const StrideEntry *e = t.vectorizeDetector->find(pcv_);
            stride_vec = e && e->confident();
            if (stride_vec)
                strideVecStride_ = e->stride;
        }
        const bool vec = s1_vec || s2_vec || seeding || stride_vec;
        const bool s1_ok = nsrcs < 1 || r_[inst.rs1].valid;
        const bool s2_ok = nsrcs < 2 || r_[inst.rs2].valid;
        const bool srcs_ok = s1_ok && s2_ok;

        // In-order VIR issue: the instruction occupies the issue slot
        // from when its *first* copy can go; individual copies then
        // issue as their own lane inputs return.
        // Readiness of purely scalar sources (used on scalar paths).
        Cycle scalar_src_ready = 0;
        if (nsrcs >= 1 && !s1_vec)
            scalar_src_ready = std::max(scalar_src_ready,
                                        r_[inst.rs1].ready);
        if (nsrcs >= 2 && !s2_vec)
            scalar_src_ready = std::max(scalar_src_ready,
                                        r_[inst.rs2].ready);

        std::fill(lane_ready, lane_ready + numLanes_, Cycle(0));
        Cycle min_src = kCycleNever;
        for (unsigned i = 0; i < numLanes_; ++i) {
            if (!m.test(i))
                continue;
            Cycle rr = 0;
            if (nsrcs >= 1)
                rr = std::max(rr, laneReadyOf(inst.rs1, i));
            if (nsrcs >= 2)
                rr = std::max(rr, laneReadyOf(inst.rs2, i));
            lane_ready[i] = rr;
            min_src = std::min(min_src, rr);
        }
        if (min_src == kCycleNever)
            min_src = 0;

        const unsigned copies =
            (numLanes_ + cfg_.vectorWidth - 1) / cfg_.vectorWidth;
        const Cycle issue_start = std::max(curIssue_, min_src);
        const Cycle issue_len =
            vec ? (copies + cfg_.vectorPorts - 1) / cfg_.vectorPorts
                : 1;
        curIssue_ = issue_start + issue_len;
        if (vec)
            ++st_.vectorOps;
        else
            ++st_.scalarOps;
        st_.issueEnd = std::max(st_.issueEnd, curIssue_);

        const FuClass cls = inst.fuClass();
        const Cycle lat = cls == FuClass::kIntMul ? 3
                          : cls == FuClass::kIntDiv ? 18
                          : cls == FuClass::kFpAdd ? 3
                          : cls == FuClass::kFpMul ? 5
                          : cls == FuClass::kFpDiv ? 6
                                                   : 1;

        InstPc next_pc = pcv_ + 1;
        bool flr_hit = pcv_ == t.flrPc;

        if (seeding) {
            // The vectorized striding load: lane addresses come from
            // the stride predictor, not the address register.
            seed_.pending = false;
            LaneMask faults;
            std::fill(vals, vals + numLanes_, uint64_t(0));
            std::fill(done, done + numLanes_, issue_start);
            std::fill(lane_ready, lane_ready + numLanes_, issue_start);
            const Cycle last = issueLaneLoads(
                seedAddrs_, m, seed_.bytes, issue_start, lane_ready,
                vals, done, faults);
            // In-order VIR: the next instruction is fetched only once
            // all copies of this one have issued (Section 4.2.2).
            curIssue_ = std::max(curIssue_, last);
            st_.issueEnd = std::max(st_.issueEnd, curIssue_);
            faulted_ |= faults;
            if (!writeVector(seed_.dest, vals, m & ~faults, done))
                return ChainExit::kVratFull;
        } else if (inst.isLoad()) {
            const int64_t off = inst.imm;
            if (vec) {
                LaneMask faults;
                if (stride_vec) {
                    // Secondary striding load: lane k reads the k-th
                    // future instance, base + k * stride.
                    const Addr base = r_[inst.rs1].scalar +
                                      static_cast<Addr>(off);
                    for (unsigned i = 0; i < numLanes_; ++i) {
                        addrs[i] = base + static_cast<Addr>(
                                              strideVecStride_ *
                                              int64_t(i));
                    }
                } else {
                    for (unsigned i = 0; i < numLanes_; ++i) {
                        addrs[i] = laneVal(inst.rs1, i) +
                                   static_cast<Addr>(off);
                    }
                }
                std::fill(vals, vals + numLanes_, uint64_t(0));
                std::fill(done, done + numLanes_, issue_start);
                if (!srcs_ok) {
                    // Vector load with an invalid scalar input: all
                    // lanes produce garbage; skip the access.
                    if (!writeScalar(inst.rd, 0, false, issue_start))
                        return ChainExit::kVratFull;
                } else {
                    const Cycle last = issueLaneLoads(
                        addrs, m, inst.memBytes(), issue_start,
                        lane_ready, vals, done, faults);
                    curIssue_ = std::max(curIssue_, last);
                    st_.issueEnd = std::max(st_.issueEnd, curIssue_);
                    faulted_ |= faults;
                    if (!writeVector(inst.rd, vals, m & ~faults, done))
                        return ChainExit::kVratFull;
                }
            } else {
                // Scalar load: one access shared by all lanes.
                const Addr a = r_[inst.rs1].scalar +
                               static_cast<Addr>(off);
                uint64_t v = 0;
                if (!srcs_ok || !mem_.tryRead(a, inst.memBytes(), v)) {
                    if (!writeScalar(inst.rd, 0, false, issue_start))
                        return ChainExit::kVratFull;
                } else {
                    const MemAccess ma = memsys_.access(
                        a, inst.memBytes(),
                        std::max(issue_start, scalar_src_ready) + 1,
                        false, Requester::kRunahead, pcv_, v);
                    dataEnd_ = std::max(dataEnd_, ma.done);
                    ++st_.laneLoads;
                    if (!writeScalar(inst.rd, v, true, ma.done))
                        return ChainExit::kVratFull;
                }
            }
        } else if (inst.isStore()) {
            // Runahead is transient: stores are dropped.
        } else if (inst.isBranch()) {
            bool forced_nt = pcv_ == t.forcedNotTakenPc;
            if (inst.op == Opcode::kJmp) {
                next_pc = inst.target;
            } else if (forced_nt) {
                next_pc = pcv_ + 1;
            } else if (!r_[inst.rs1].vec) {
                // Uniform branch: follow the functional direction; an
                // invalid source falls through.
                if (r_[inst.rs1].valid &&
                    branchTaken(inst.op, r_[inst.rs1].scalar)) {
                    next_pc = inst.target;
                }
            } else {
                // Divergence: the reconvergence logic compares all
                // active lanes' outcomes, so the branch resolves when
                // the slowest lane's source has returned.
                Cycle max_src = 0;
                for (unsigned i = 0; i < numLanes_; ++i) {
                    if (m.test(i))
                        max_src = std::max(max_src, lane_ready[i]);
                }
                curIssue_ = std::max(curIssue_, max_src + 1);
                st_.issueEnd = std::max(st_.issueEnd, curIssue_);
                LaneMask taken;
                const uint64_t *s1_lanes = lanesOf(inst.rs1);
                for (unsigned i = 0; i < numLanes_; ++i) {
                    if (m.test(i) &&
                        branchTaken(inst.op, s1_lanes[i])) {
                        taken.set(i);
                    }
                }
                const LaneMask not_taken = m & ~taken;
                if (not_taken.none()) {
                    next_pc = inst.target;
                } else if (taken.none()) {
                    next_pc = pcv_ + 1;
                } else if (t.reconverge) {
                    // Follow the group containing the first lane;
                    // push the other group for later (Section 4.2.3).
                    const bool first_taken = taken.test(firstLane(m));
                    const LaneMask &follow =
                        first_taken ? taken : not_taken;
                    const LaneMask &defer =
                        first_taken ? not_taken : taken;
                    const InstPc defer_pc =
                        first_taken ? pcv_ + 1 : inst.target;
                    if (first_taken)
                        next_pc = inst.target;
                    const bool pushed = stack_.push(defer_pc, defer);
                    if (!pushed) {
                        st_.lanesDropped += defer.count();
                        faulted_ |= defer;
                    }
                    Trace::emit(TraceCat::kDivergence, curIssue_, pcv_,
                                defer.count(), pushed ? 0 : 1);
                    active_ = follow;
                } else {
                    // VR-style: follow the first scalar-equivalent
                    // lane; divergent lanes are invalidated.
                    const bool first_taken = taken.test(firstLane(m));
                    const LaneMask &follow =
                        first_taken ? taken : not_taken;
                    const LaneMask &dead =
                        first_taken ? not_taken : taken;
                    if (first_taken)
                        next_pc = inst.target;
                    st_.lanesInvalidated += dead.count();
                    faulted_ |= dead;
                    Trace::emit(TraceCat::kDivergence, curIssue_, pcv_,
                                dead.count(), 2);
                    active_ = follow;
                }
            }
        } else if (inst.hasDest()) {
            if (vec) {
                const unsigned per_cycle =
                    cfg_.vectorWidth * cfg_.vectorPorts;
                unsigned nth = 0;
                Cycle max_done = issue_start;
                for (unsigned i = 0; i < numLanes_; ++i) {
                    vals[i] = evalOp(inst.op, laneVal(inst.rs1, i),
                                     laneVal(inst.rs2, i), inst.imm);
                    // Copy issues when its own inputs are back.
                    const Cycle at = std::max(
                        issue_start + nth / per_cycle, lane_ready[i]);
                    if (m.test(i)) {
                        ++nth;
                        max_done = std::max(max_done, at + lat);
                    }
                    done[i] = at + lat;
                }
                // In-order VIR: all copies issued and executed before
                // the next instruction is fetched.
                curIssue_ = std::max(curIssue_, max_done);
                st_.issueEnd = std::max(st_.issueEnd, curIssue_);
                if (!writeVector(inst.rd, vals, m, done))
                    return ChainExit::kVratFull;
                if (!srcs_ok)
                    r_[inst.rd].valid = false;
            } else {
                const uint64_t v =
                    srcs_ok ? evalOp(inst.op, r_[inst.rs1].scalar,
                                     r_[inst.rs2].scalar, inst.imm)
                            : 0;
                if (!writeScalar(inst.rd, v, srcs_ok,
                                 std::max(issue_start + issue_len,
                                          scalar_src_ready + lat)))
                    return ChainExit::kVratFull;
            }
        }

        pcv_ = next_pc;

        // Terminate this lane group once the final dependent load in
        // the chain (the FLR) has executed.
        if (flr_hit) {
            arrived_ |= active_ & ~faulted_;
            active_.reset();
            if (!pop_group())
                return ChainExit::kCompleted;
        }
    }
}

uint64_t
VectorSubthread::applyCursor(CoverageCursor *cursor, Addr base,
                             int64_t stride, uint64_t &lanes_avail)
{
    if (!cursor || stride <= 0)
        return 0;
    if (!cursor->valid || base < cursor->from || base > cursor->to) {
        // The stream restarted (new inner-loop invocation) or ran
        // past the frontier: start a fresh window.
        cursor->valid = false;
        return 0;
    }
    const uint64_t skip =
        (cursor->to - base) / static_cast<uint64_t>(stride) + 1;
    lanes_avail = skip >= lanes_avail ? 0 : lanes_avail - skip;
    return skip;
}

void
VectorSubthread::advanceCursor(CoverageCursor *cursor, Addr first,
                               int64_t stride, unsigned lanes)
{
    if (!cursor || stride <= 0 || lanes == 0)
        return;
    const Addr last =
        first + static_cast<Addr>(stride) * (lanes - 1);
    if (!cursor->valid) {
        cursor->from = first;
        cursor->valid = true;
    }
    cursor->to = last;
}

EpisodeStats
VectorSubthread::runVectorized(const DiscoveryResult &d,
                               const RegState &regs, Cycle spawn,
                               unsigned lanes,
                               CoverageCursor *cursor)
{
    uint64_t avail = std::clamp(lanes, 1u, cfg_.maxLanes);
    const uint64_t skip =
        applyCursor(cursor, d.spawnAddr, d.stride, avail);
    if (avail == 0) {
        // Whole window already covered by the previous episode.
        EpisodeStats none;
        none.spawnCycle = spawn;
        none.issueEnd = spawn;
        none.dataEnd = spawn;
        return none;
    }
    const Addr first = d.spawnAddr +
                       static_cast<Addr>(d.stride * int64_t(skip));
    lanes = static_cast<unsigned>(avail);
    resetEpisode(lanes, spawn);
    initRegs(regs, spawn, kCycleNever);

    seed_.pending = true;
    seed_.pc = d.stridePc;
    seed_.dest = d.strideDest;
    seed_.bytes = d.strideBytes;
    for (unsigned k = 0; k < numLanes_; ++k) {
        seedAddrs_[k] = first +
                        static_cast<Addr>(d.stride * int64_t(k));
    }
    advanceCursor(cursor, first, d.stride, lanes);

    TermSpec t;
    // Per the paper's footnote: with divergent control flow in the
    // chain, lanes run to the next stride-PC occurrence rather than
    // stopping at the FLR.
    t.flrPc = d.divergentChain ? kInvalidPc : d.flr;
    t.stopBeforePc = d.stridePc;
    t.timeout = cfg_.timeoutInsts;
    t.reconverge = cfg_.gpuReconvergence;

    pcv_ = d.stridePc;
    execChain(t);
    st_.issueEnd = std::max(st_.issueEnd, curIssue_);
    st_.dataEnd = std::max(dataEnd_, st_.issueEnd);
    st_.reconvPushes = stack_.pushes;
    st_.peakVecRegs = vrat_.peakVecInUse();
    return st_;
}

EpisodeStats
VectorSubthread::runNested(const DiscoveryResult &d,
                           const RegState &regs, Cycle spawn,
                           const StrideDetector &detector,
                           CoverageCursor *cursor)
{
    if (d.backwardBranchPc == kInvalidPc || !d.bound.valid) {
        const unsigned lanes =
            d.bound.valid
                ? unsigned(std::clamp<int64_t>(d.bound.remaining, 1,
                                               cfg_.maxLanes))
                : cfg_.maxLanes;
        // Fallback episodes seed from the *inner* striding load; the
        // cursor tracks the outer frontier, so leave it untouched.
        return runVectorized(d, regs, spawn, lanes, nullptr);
    }

    // --- Phase 1: NDM scalar walk on the not-taken path of the
    // backward branch, hunting an outer striding load.
    resetEpisode(1, spawn);
    initRegs(regs, spawn, kCycleNever);
    pcv_ = d.backwardBranchPc + 1;
    Trace::emit(TraceCat::kNdm, spawn, pcv_, 1);

    TermSpec hunt;
    hunt.forcedNotTakenPc = d.backwardBranchPc;
    hunt.timeout = cfg_.ndmTimeout;
    hunt.reconverge = false;
    hunt.huntDetector = &detector;
    hunt.huntLimitPc = d.stridePc;  // outer load: address below the ILR

    const ChainExit e1 = execChain(hunt);
    if (e1 != ChainExit::kFoundStride) {
        // Fall back to the loop bound found during Discovery Mode.
        const unsigned lanes = unsigned(
            std::clamp<int64_t>(d.bound.remaining, 1, cfg_.maxLanes));
        return runVectorized(d, regs, spawn, lanes, nullptr);
    }

    // --- Phase 2: vectorize the outer striding load by 16 and run
    // the dependents through to the inner striding load.
    const InstPc outer_pc = pcv_;
    const Instruction &outer = prog_.at(outer_pc);
    const StrideEntry *oe = detector.find(outer_pc);
    if (!oe || !r_[outer.rs1].valid) {
        const unsigned lanes = unsigned(
            std::clamp<int64_t>(d.bound.remaining, 1, cfg_.maxLanes));
        return runVectorized(d, regs, spawn, lanes, nullptr);
    }
    Addr outer_base = r_[outer.rs1].scalar +
                      static_cast<Addr>(outer.imm);

    // Outer-frontier tracking: skip outer iterations whose inner
    // invocations previous nested episodes already covered.
    uint64_t outer_avail = std::min(cfg_.nestedOuterLanes, kMaxLanes);
    const uint64_t outer_skip =
        applyCursor(cursor, outer_base, oe->stride, outer_avail);
    if (outer_avail == 0) {
        EpisodeStats none;
        none.spawnCycle = spawn;
        none.issueEnd = spawn;
        none.dataEnd = spawn;
        return none;
    }
    outer_base += static_cast<Addr>(oe->stride * int64_t(outer_skip));

    const unsigned outer_lanes = static_cast<unsigned>(outer_avail);
    Trace::emit(TraceCat::kNdm, curIssue_, outer_pc, 2, outer_lanes);
    advanceCursor(cursor, outer_base, oe->stride, outer_lanes);
    numLanes_ = outer_lanes;
    active_ = fullMask(outer_lanes);
    faulted_.reset();
    arrived_.reset();
    st_.lanesSpawned = outer_lanes;

    seed_.pending = true;
    seed_.pc = outer_pc;
    seed_.dest = outer.rd;
    seed_.bytes = outer.memBytes();
    for (unsigned k = 0; k < outer_lanes; ++k) {
        seedAddrs_[k] = outer_base +
                        static_cast<Addr>(oe->stride * int64_t(k));
    }

    TermSpec to_inner;
    to_inner.stopBeforePc = d.stridePc;
    to_inner.forcedNotTakenPc = d.backwardBranchPc;
    to_inner.timeout = cfg_.ndmTimeout;
    to_inner.reconverge = cfg_.gpuReconvergence;
    to_inner.vectorizeDetector = &detector;
    to_inner.vectorizeLimitPc = d.stridePc;

    execChain(to_inner);
    const LaneMask reached = arrived_ & ~faulted_;
    if (reached.none()) {
        st_.issueEnd = std::max(st_.issueEnd, curIssue_);
        st_.dataEnd = std::max(dataEnd_, st_.issueEnd);
        return st_;
    }

    // --- Phase 3: per outer lane, compute the inner start address
    // and the inner trip count (LCR inputs + IR), collect up to
    // maxLanes inner stride addresses, expand registers, and run the
    // inner chain fully vectorized.
    const Instruction &inner = prog_.at(d.stridePc);
    const RegId ind = d.bound.inductionReg;
    const RegId bound_reg =
        d.lcr.isImmCompare ? ind
                           : (d.lcr.rs1 == ind ? d.lcr.rs2 : d.lcr.rs1);

    // Collect inner seed addresses straight into seedAddrs_ — the
    // phase-2 (outer) seed was already consumed by execChain above.
    unsigned n_inner = 0;
    for (unsigned j = 0;
         j < outer_lanes && n_inner < cfg_.maxLanes; ++j) {
        if (!reached.test(j))
            continue;
        const Addr base = laneVal(inner.rs1, j) +
                          static_cast<Addr>(inner.imm);
        const uint64_t ind_v = laneVal(ind, j);
        const uint64_t bnd_v = d.lcr.isImmCompare
                                   ? uint64_t(d.lcr.imm)
                                   : laneVal(bound_reg, j);
        int64_t n = remainingIterations(d.lcr, ind_v, bnd_v,
                                        d.bound.increment);
        if (n < 0)
            n = 1;
        n = std::min<int64_t>(n, cfg_.maxLanes);
        for (int64_t tt = 0;
             tt < n && n_inner < cfg_.maxLanes; ++tt) {
            seedAddrs_[n_inner] =
                base + static_cast<Addr>(d.stride * tt);
            outerOf_[n_inner] = j;
            ++n_inner;
        }
    }
    if (n_inner == 0) {
        st_.issueEnd = std::max(st_.issueEnd, curIssue_);
        st_.dataEnd = std::max(dataEnd_, st_.issueEnd);
        return st_;
    }

    // Expand registers: vector-by-outer-lane values fan out to the
    // inner lanes spawned from that outer lane. outerOf_ is not
    // monotone relative to the write cursor (one outer lane spawns
    // many inner lanes), so stage through scratch buffers.
    for (int rid = 0; rid < kNumArchRegs; ++rid) {
        SReg &reg = r_[rid];
        if (!reg.vec)
            continue;
        uint64_t *lanes = lanesOf(static_cast<RegId>(rid));
        Cycle *lready = laneReadyArr(static_cast<RegId>(rid));
        for (unsigned i = 0; i < n_inner; ++i) {
            expandVals_[i] = lanes[outerOf_[i]];
            expandReady_[i] = lready[outerOf_[i]];
        }
        std::copy(expandVals_, expandVals_ + n_inner, lanes);
        std::copy(expandReady_, expandReady_ + n_inner, lready);
        reg.fill = n_inner;
    }
    numLanes_ = n_inner;
    active_ = fullMask(n_inner);
    faulted_.reset();
    arrived_.reset();
    stack_.clear();
    st_.nested = true;
    st_.nestedInnerLanes = n_inner;
    st_.lanesSpawned = n_inner;

    seed_.pending = true;
    seed_.pc = d.stridePc;
    seed_.dest = d.strideDest;
    seed_.bytes = d.strideBytes;

    TermSpec t;
    t.flrPc = d.divergentChain ? kInvalidPc : d.flr;
    t.stopBeforePc = d.stridePc;
    t.timeout = cfg_.timeoutInsts;
    t.reconverge = cfg_.gpuReconvergence;
    pcv_ = d.stridePc;
    Trace::emit(TraceCat::kNdm, curIssue_, d.stridePc, 3, n_inner);
    execChain(t);

    st_.issueEnd = std::max(st_.issueEnd, curIssue_);
    st_.dataEnd = std::max(dataEnd_, st_.issueEnd);
    st_.reconvPushes = stack_.pushes;
    st_.peakVecRegs = vrat_.peakVecInUse();
    return st_;
}

EpisodeStats
VectorSubthread::runVrStyle(InstPc start_pc, const RegState &regs,
                            Cycle spawn, const StrideDetector &detector,
                            unsigned scalar_budget)
{
    // Scalar walk from the stall point to the first striding load.
    resetEpisode(1, spawn);
    // Values that will not arrive shortly after the stall begins
    // (i.e. DRAM-bound producers) are invalid in runahead.
    initRegs(regs, spawn, spawn + 30);
    pcv_ = start_pc;

    TermSpec hunt;
    hunt.timeout = scalar_budget;
    hunt.reconverge = false;
    hunt.huntDetector = &detector;

    const ChainExit e1 = execChain(hunt);
    if (e1 != ChainExit::kFoundStride) {
        st_.huntExit = e1 == ChainExit::kTimeout
                           ? EpisodeStats::HuntExit::kTimeout
                       : e1 == ChainExit::kHalt
                           ? EpisodeStats::HuntExit::kHalt
                       : e1 == ChainExit::kFault
                           ? EpisodeStats::HuntExit::kFault
                           : EpisodeStats::HuntExit::kCompleted;
        st_.issueEnd = std::max(st_.issueEnd, curIssue_);
        st_.dataEnd = std::max(dataEnd_, st_.issueEnd);
        return st_;
    }
    st_.huntExit = EpisodeStats::HuntExit::kFound;

    const InstPc stride_pc = pcv_;
    const Instruction &ld = prog_.at(stride_pc);
    const StrideEntry *se = detector.find(stride_pc);
    if (!se || !r_[ld.rs1].valid) {
        st_.huntExit = EpisodeStats::HuntExit::kInvalidBase;
        st_.issueEnd = std::max(st_.issueEnd, curIssue_);
        st_.dataEnd = std::max(dataEnd_, st_.issueEnd);
        return st_;
    }
    const Addr base = r_[ld.rs1].scalar + static_cast<Addr>(ld.imm);

    numLanes_ = cfg_.maxLanes;
    active_ = fullMask(numLanes_);
    faulted_.reset();
    st_.lanesSpawned = numLanes_;

    seed_.pending = true;
    seed_.pc = stride_pc;
    seed_.dest = ld.rd;
    seed_.bytes = ld.memBytes();
    for (unsigned k = 0; k < numLanes_; ++k) {
        seedAddrs_[k] = base +
                        static_cast<Addr>(se->stride * int64_t(k));
    }

    TermSpec t;
    t.stopBeforePc = stride_pc;     // one trip through the chain
    t.timeout = cfg_.timeoutInsts;
    t.reconverge = false;           // VR invalidates divergent lanes
    pcv_ = stride_pc;
    execChain(t);

    st_.issueEnd = std::max(st_.issueEnd, curIssue_);
    st_.dataEnd = std::max(dataEnd_, st_.issueEnd);
    st_.peakVecRegs = vrat_.peakVecInUse();
    return st_;
}

} // namespace dvr
