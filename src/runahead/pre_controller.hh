/**
 * @file
 * Precise Runahead Execution (PRE) baseline (Naithani et al., HPCA
 * 2020). On a full-ROB stall it pre-executes the future instruction
 * stream at front-end speed for the duration of the stall, issuing
 * prefetches for loads whose address inputs are valid. Loads whose
 * data does not return within the runahead interval leave their
 * destination invalid, which is why PRE cannot prefetch past the
 * first level of indirection. PRE never flushes and never delays the
 * return to normal mode.
 */

#ifndef DVR_RUNAHEAD_PRE_CONTROLLER_HH
#define DVR_RUNAHEAD_PRE_CONTROLLER_HH

#include <array>

#include "common/stats.hh"
#include "core/ooo_core.hh"
#include "mem/memory_system.hh"
#include "runahead/technique.hh"

namespace dvr {

class SimMemory;

struct PreConfig
{
    unsigned walkWidth = 5;         ///< instructions walked per cycle
    unsigned maxWalkInsts = 2048;   ///< safety cap per episode
};

class PreController : public RunaheadTechnique
{
  public:
    PreController(const PreConfig &cfg, const Program &prog,
                  const SimMemory &mem, MemorySystem &memsys);

    void attachCore(const OooCore &core) { core_ = &core; }

    const char *name() const override { return "pre"; }
    const char *statPrefix() const override { return "pre."; }
    void attach(OooCore &core) override { attachCore(core); }
    void finalizeStats(StatSet &out) const override
    {
        out.merge(statPrefix(), toStatSet());
    }

    Cycle onFullRobStall(const StallInfo &si) override;

    uint64_t episodes() const { return episodes_; }
    uint64_t prefetchesIssued() const { return prefetches_; }
    StatSet toStatSet() const;

  private:
    const PreConfig cfg_;
    const Program &prog_;
    const SimMemory &mem_;
    MemorySystem &memsys_;
    const OooCore *core_ = nullptr;
    uint64_t episodes_ = 0;
    uint64_t prefetches_ = 0;
    uint64_t invalidLoadSkips_ = 0;
    uint64_t walkInsts_ = 0;
};

} // namespace dvr

#endif // DVR_RUNAHEAD_PRE_CONTROLLER_HH
