#include "runahead/oracle.hh"

#include <algorithm>

#include "common/log.hh"
#include "isa/program.hh"
#include "mem/sim_memory.hh"

namespace dvr {

std::vector<Addr>
recordLoadTrace(const Program &prog, SimMemory &mem, uint64_t max_insts,
                const RegState *start, InstPc start_pc)
{
    std::vector<Addr> trace;
    std::array<uint64_t, kNumArchRegs> r{};
    if (start)
        r = start->value;
    InstPc pc = start_pc;
    for (uint64_t n = 0; n < max_insts && prog.valid(pc); ++n) {
        const Instruction &inst = prog.at(pc);
        if (inst.op == Opcode::kHalt)
            break;
        InstPc next = pc + 1;
        if (inst.isLoad()) {
            const Addr a = r[inst.rs1] + static_cast<Addr>(inst.imm);
            trace.push_back(lineAlign(a));
            r[inst.rd] = mem.read(a, inst.memBytes());
        } else if (inst.isStore()) {
            mem.write(r[inst.rs1] + static_cast<Addr>(inst.imm),
                      inst.memBytes(), r[inst.rs2]);
        } else if (inst.isBranch()) {
            if (branchTaken(inst.op, r[inst.rs1]))
                next = inst.target;
        } else if (inst.hasDest()) {
            r[inst.rd] = evalOp(inst.op, r[inst.rs1], r[inst.rs2],
                                inst.imm);
        }
        pc = next;
    }
    return trace;
}

OracleController::OracleController(const OracleConfig &cfg,
                                   MemorySystem &memsys,
                                   std::vector<Addr> trace)
    : cfg_(cfg), memsys_(memsys), trace_(std::move(trace))
{
}

void
OracleController::onRetire(const RetireInfo &ri)
{
    if (!ri.inst->isLoad())
        return;
    ++loadIdx_;
    const size_t target =
        std::min(trace_.size(), loadIdx_ + cfg_.lookaheadLoads);
    // Keep the prefetch frontier `lookaheadLoads` loads ahead of the
    // main thread; the memory system drops requests when no MSHR is
    // free, which bounds the oracle to realistic bandwidth.
    while (issuedUpTo_ < target) {
        memsys_.prefetchLine(trace_[issuedUpTo_], ri.issueCycle,
                             Requester::kHwPrefetch,
                             /*best_effort=*/false);
        ++issuedUpTo_;
        ++issued_;
    }
}

StatSet
OracleController::toStatSet() const
{
    StatSet s;
    s.set("prefetches", double(issued_));
    s.set("trace_loads", double(trace_.size()));
    return s;
}

} // namespace dvr
