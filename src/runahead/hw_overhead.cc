#include "runahead/hw_overhead.hh"

namespace dvr {

namespace {

unsigned
bitsToBytes(unsigned bits)
{
    return (bits + 7) / 8;
}

} // namespace

std::vector<HwOverheadItem>
computeHwOverhead(const HwOverheadParams &p)
{
    std::vector<HwOverheadItem> items;

    // 32-entry stride detector: PC + previous address + stride +
    // saturating counter + innermost bit per entry (460 B).
    const unsigned stride_bits =
        p.strideEntries * (p.pcBits + p.addrBits + p.strideBits +
                           p.confBits + 1);
    items.push_back({"stride_detector", bitsToBytes(stride_bits)});

    // VRAT: 16 entries of 16 physical register ids of 9 bits (288 B).
    const unsigned vrat_bits =
        p.vratEntries * p.vratCopies * p.physRegIdBits;
    items.push_back({"vrat", bitsToBytes(vrat_bits)});

    // VIR: mask + issued + executed bits + uop/imm + dest + 2 sources
    // with dead-source bits (86 B).
    const unsigned vir_bits = p.lanes + p.virCopies + p.virCopies +
                              64 + 9 * p.virCopies +
                              10 * p.virCopies + 10 * p.virCopies;
    items.push_back({"vir", bitsToBytes(vir_bits)});

    // Front-end buffer: 8 decoded micro-ops (64 B).
    items.push_back({"frontend_buffer",
                     p.frontendUops * p.frontendUopBytes});

    // Reconvergence stack: 8 entries of PC + lane mask (176 B).
    const unsigned reconv_bits =
        p.reconvDepth * (p.reconvPcBytes * 8 + p.lanes);
    items.push_back({"reconvergence_stack", bitsToBytes(reconv_bits)});

    // FLR: a load PC (6 B). LCR: two register ids (2 B). SBB: 1 bit.
    items.push_back({"flr", p.reconvPcBytes});
    items.push_back({"lcr", bitsToBytes(2 * p.regIdBits)});
    items.push_back({"sbb", 0});

    // Loop-bound detector: two register-id checkpoints plus the
    // compare and branch registers (48 B).
    const unsigned lb_bits = 2 * p.archRegs * p.regIdBits;
    items.push_back({"loop_bound_detector",
                     bitsToBytes(lb_bits) + 2 * p.reconvPcBytes +
                         2 * 2});

    // Taint tracker: one bit per architectural integer register.
    items.push_back({"taint_tracker", bitsToBytes(p.archRegs)});

    // NDM: Increment Register (7 bits) + Inner Load Register (6 B).
    items.push_back({"ndm_ir", bitsToBytes(7)});
    items.push_back({"ndm_ilr", p.reconvPcBytes});

    return items;
}

unsigned
totalHwOverheadBytes(const HwOverheadParams &p)
{
    unsigned total = 0;
    for (const auto &it : computeHwOverhead(p))
        total += it.bytes;
    return total;
}

} // namespace dvr
