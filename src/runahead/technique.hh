/**
 * @file
 * The pluggable technique seam: every runahead/prefetching technique
 * the simulator can wire onto the core implements RunaheadTechnique,
 * and a string-keyed factory registry constructs them from a
 * SimConfig. The simulator knows only this interface; adding a new
 * technique means registering one more factory, not editing the sim
 * layer.
 */

#ifndef DVR_RUNAHEAD_TECHNIQUE_HH
#define DVR_RUNAHEAD_TECHNIQUE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/ooo_core.hh"

namespace dvr {

class Program;
class SimMemory;
class MemorySystem;
struct SimConfig;

/**
 * A runahead technique as the simulator sees it: a CoreClient (retire
 * stream + full-ROB-stall hooks) that can also attach to the core,
 * name itself, and contribute its statistics to the run's StatSet.
 */
class RunaheadTechnique : public CoreClient
{
  public:
    ~RunaheadTechnique() override = default;

    /** Registry key, e.g. "dvr" (for labels and error messages). */
    virtual const char *name() const = 0;

    /** Prefix its stats are merged under, e.g. "dvr.". */
    virtual const char *statPrefix() const = 0;

    /** Called once, after core construction and before the run. */
    virtual void attach(OooCore &) {}

    /** Merge this technique's counters into the run's stat set. */
    virtual void finalizeStats(StatSet &) const {}
};

/**
 * Everything a technique factory may need to build an instance. All
 * references outlive the technique for the duration of the run.
 */
struct TechniqueContext
{
    const SimConfig &cfg;
    const Program &prog;
    /** The run's working memory image (shared with the core). */
    const SimMemory &mem;
    /** The untouched image (for oracle-style functional pre-runs). */
    const SimMemory &pristine;
    MemorySystem &memsys;
    /**
     * Architectural start state when the run restores from a
     * checkpoint; null/0 means the program entry. Oracle-style
     * functional pre-runs must replay from here, not from entry.
     */
    const RegState *startRegs = nullptr;
    InstPc startPc = 0;
};

/** One registered technique: its key and construction hooks. */
struct TechniqueInfo
{
    std::string name;
    std::string description;
    /**
     * Normalize the configuration for this technique (e.g. "imp"
     * enables the IMP prefetcher, "dvr-offload" strips discovery).
     * Applied by Simulator::runOn before any component is built, and
     * by SimConfig::baseline. Must be idempotent. May be null.
     */
    void (*prepare)(SimConfig &) = nullptr;
    /**
     * Build the technique. May be null (or return null) for
     * techniques that need no core client (base, imp).
     */
    std::unique_ptr<RunaheadTechnique> (*create)(
        const TechniqueContext &) = nullptr;
};

/**
 * String-keyed technique factory registry. Techniques self-register
 * via TechniqueRegistrar statics; lookups are by the same names
 * parseTechnique accepts.
 */
class TechniqueRegistry
{
  public:
    static TechniqueRegistry &instance();

    /** Register a technique; fatal() on duplicate names. */
    void add(TechniqueInfo info);

    /** Find by name; null when unknown. */
    const TechniqueInfo *find(const std::string &name) const;

    /** All registered names, in registration order. */
    std::vector<std::string> names() const;

  private:
    std::vector<TechniqueInfo> entries_;
};

/** Registers a technique at static-initialization time. */
struct TechniqueRegistrar
{
    explicit TechniqueRegistrar(TechniqueInfo info)
    {
        TechniqueRegistry::instance().add(std::move(info));
    }
};

} // namespace dvr

#endif // DVR_RUNAHEAD_TECHNIQUE_HH
