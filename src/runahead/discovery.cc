#include "runahead/discovery.hh"

namespace dvr {

DiscoveryMode::DiscoveryMode(StrideDetector &detector)
    : detector_(detector)
{
}

void
DiscoveryMode::begin(const StrideEntry &entry, const Instruction &inst,
                     const RegState &regs)
{
    result_ = DiscoveryResult();
    result_.stridePc = entry.pc;
    result_.stride = entry.stride;
    result_.strideDest = inst.rd;
    result_.strideBytes = inst.memBytes();

    taint_.reset(inst.rd);
    loopBound_.begin(entry.pc, regs);
    detector_.clearDiscoveryBits();
    detector_.markSeenInDiscovery(entry.pc);
    active_ = true;
    observed_ = 0;
}

DiscoveryMode::Status
DiscoveryMode::observe(const RetireInfo &ri, const RegState &regs)
{
    if (!active_)
        return Status::kInactive;
    if (++observed_ > kTimeout) {
        active_ = false;
        return Status::kAborted;
    }

    const Instruction &inst = *ri.inst;

    // Closing the loop: the trigger striding load came around again.
    if (ri.pc == result_.stridePc) {
        result_.flr = loopBound_.flr();
        result_.divergentChain = loopBound_.divergentChain();
        result_.taintMask = taint_.mask();
        result_.bound = loopBound_.finish(regs);
        result_.lcr = loopBound_.lcr();
        result_.backwardBranchPc = loopBound_.backwardBranchPc();
        result_.spawnAddr = ri.effAddr;
        active_ = false;
        return Status::kDone;
    }

    // Innermost-stride switching: a different confident striding load
    // seen twice before the trigger returns is more inner; restart
    // discovery on it (resetting the VTT, FLR, and the seen bits).
    if (inst.isLoad()) {
        const StrideEntry *e = detector_.find(ri.pc);
        if (e && e->confident() &&
            detector_.markSeenInDiscovery(ri.pc)) {
            begin(*e, inst, regs);
            // The new trigger instance has just retired: its address
            // is the reference point.
            return Status::kSwitched;
        }
    }

    // Dependent-load checking: a load whose address base is tainted
    // extends the chain; record it in the FLR.
    if (inst.isLoad() && taint_.isTainted(inst.rs1))
        loopBound_.noteFinalLoad(ri.pc);

    taint_.observe(inst);
    loopBound_.observe(ri.pc, inst);
    return Status::kRunning;
}

} // namespace dvr
