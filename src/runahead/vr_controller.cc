#include "runahead/vr_controller.hh"

#include "common/log.hh"

namespace dvr {

VrController::VrController(const VrConfig &cfg, const Program &prog,
                           const SimMemory &mem, MemorySystem &memsys)
    : cfg_(cfg), detector_(32),
      subthread_(cfg.subthread, prog, mem, memsys)
{
}

void
VrController::onRetire(const RetireInfo &ri)
{
    if (ri.inst->isLoad())
        detector_.observe(ri.pc, ri.effAddr);
}

Cycle
VrController::onFullRobStall(const StallInfo &si)
{
    panicIf(core_ == nullptr, "VrController: core not attached");
    EpisodeStats ep = subthread_.runVrStyle(
        si.nextPc, core_->regs(), si.stallStart, detector_,
        cfg_.scalarBudget);
    ++huntExitCounts_[static_cast<int>(ep.huntExit)];
    if (ep.lanesSpawned <= 1) {
        ++triggersWithoutStride_;
        return 0;
    }
    ++episodes_;
    laneLoads_ += ep.laneLoads;
    lanesInvalidated_ += ep.lanesInvalidated;
    // Delayed termination: normal mode resumes only after the whole
    // chain has issued, even when the blocking load returned earlier.
    if (ep.issueEnd > si.headLoadDone) {
        delayedTerminationCycles_ +=
            double(ep.issueEnd - si.headLoadDone);
    }
    return ep.issueEnd;
}

StatSet
VrController::toStatSet() const
{
    StatSet s;
    s.set("episodes", double(episodes_));
    s.set("triggers_without_stride", double(triggersWithoutStride_));
    s.set("lane_loads", double(laneLoads_));
    s.set("lanes_invalidated", double(lanesInvalidated_));
    s.set("delayed_termination_cycles", delayedTerminationCycles_);
    static const char *names[7] = {"none", "found", "timeout", "halt",
                                   "fault", "completed", "invalid_base"};
    for (int i = 0; i < 7; ++i)
        s.set(std::string("hunt_") + names[i],
              double(huntExitCounts_[i]));
    return s;
}

} // namespace dvr
