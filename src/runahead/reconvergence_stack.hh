/**
 * @file
 * GPU-style reconvergence stack (paper Section 4.2.3). On a divergent
 * branch the not-followed lane group is pushed with its target PC and
 * mask; when the followed group reaches the termination point, the
 * head is popped and execution proceeds with that PC and mask.
 */

#ifndef DVR_RUNAHEAD_RECONVERGENCE_STACK_HH
#define DVR_RUNAHEAD_RECONVERGENCE_STACK_HH

#include <bitset>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dvr {

/** Up to 256 scalar-equivalent lanes (128 default, 256 for ablation). */
inline constexpr unsigned kMaxLanes = 256;
using LaneMask = std::bitset<kMaxLanes>;

class ReconvergenceStack
{
  public:
    struct Entry
    {
        InstPc pc = kInvalidPc;
        LaneMask mask;
    };

    explicit ReconvergenceStack(unsigned depth = 8);

    /**
     * Push a diverged lane group. Inline along with pop(): the
     * subthread's chain executor churns the stack tens of millions of
     * times per sweep.
     * @return false when the stack is full (the caller drops the
     *         group: those lanes produce no further prefetches).
     */
    bool
    push(InstPc pc, const LaneMask &mask)
    {
        if (stack_.size() >= depth_) {
            ++overflowDrops;
            return false;
        }
        stack_.push_back({pc, mask});
        ++pushes;
        return true;
    }

    /** Pop the head; undefined when empty(). */
    Entry
    pop()
    {
        panicIf(stack_.empty(), "ReconvergenceStack: pop on empty stack");
        Entry e = stack_.back();
        stack_.pop_back();
        return e;
    }

    bool empty() const { return stack_.empty(); }
    size_t size() const { return stack_.size(); }
    unsigned depth() const { return depth_; }
    void clear() { stack_.clear(); }

    uint64_t pushes = 0;
    uint64_t overflowDrops = 0;

  private:
    unsigned depth_;
    std::vector<Entry> stack_;
};

} // namespace dvr

#endif // DVR_RUNAHEAD_RECONVERGENCE_STACK_HH
