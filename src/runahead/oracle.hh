/**
 * @file
 * Oracle prefetcher: "a hypothetical technique that knows all memory
 * accesses in advance, and prefetches them at the appropriate point in
 * time to avoid stalling." Implemented as a recorded functional load
 * trace prefetched a fixed number of loads ahead of the main thread,
 * through the real memory system (so it still pays MSHR and DRAM
 * bandwidth costs).
 */

#ifndef DVR_RUNAHEAD_ORACLE_HH
#define DVR_RUNAHEAD_ORACLE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "core/ooo_core.hh"
#include "mem/memory_system.hh"
#include "runahead/technique.hh"

namespace dvr {

class SimMemory;
class Program;

/**
 * Record the demand-load line-address trace of a program by running it
 * functionally. `mem` is mutated (stores execute); callers pass a
 * scratch copy of the image the timed run starts from. `start` /
 * `start_pc` replay from a checkpointed architectural state instead of
 * the program entry (null/0 = entry).
 */
std::vector<Addr> recordLoadTrace(const Program &prog, SimMemory &mem,
                                  uint64_t max_insts,
                                  const RegState *start = nullptr,
                                  InstPc start_pc = 0);

struct OracleConfig
{
    /** How many loads ahead of the main thread to prefetch. */
    unsigned lookaheadLoads = 192;
};

class OracleController : public RunaheadTechnique
{
  public:
    OracleController(const OracleConfig &cfg, MemorySystem &memsys,
                     std::vector<Addr> trace);

    const char *name() const override { return "oracle"; }
    const char *statPrefix() const override { return "oracle."; }
    void finalizeStats(StatSet &out) const override
    {
        out.merge(statPrefix(), toStatSet());
    }

    void onRetire(const RetireInfo &ri) override;

    uint64_t prefetchesIssued() const { return issued_; }
    StatSet toStatSet() const;

  private:
    const OracleConfig cfg_;
    MemorySystem &memsys_;
    std::vector<Addr> trace_;
    size_t loadIdx_ = 0;    ///< demand loads retired so far
    size_t issuedUpTo_ = 0; ///< trace position prefetched so far
    uint64_t issued_ = 0;
};

} // namespace dvr

#endif // DVR_RUNAHEAD_ORACLE_HH
