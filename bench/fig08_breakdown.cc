/**
 * @file
 * Figure 8: DVR performance breakdown, normalized to the OoO
 * baseline: (1) Vector Runahead, (2) + Offload (a decoupled subthread
 * triggered on stride detection, no discovery), (3) + Discovery Mode,
 * (4) + Nested Runahead Mode (full DVR).
 *
 * Paper-expected shape: each addition helps on average; Discovery
 * particularly benefits bc/bfs/sssp (accuracy), can slightly hurt
 * cc/pr (whose out-of-bounds fetches happen to be useful); full DVR
 * is uniformly best.
 */

#include <iostream>

#include "sim/experiment.hh"

int
main()
{
    using namespace dvr;
    printBenchHeader(std::cout, "Figure 8",
                     "DVR breakdown: VR / +Offload / +Discovery / +Nested");

    const std::vector<Technique> techs = {
        Technique::kVr, Technique::kDvrOffload,
        Technique::kDvrDiscovery, Technique::kDvr};
    const std::vector<std::string> cols = {"VR", "+Offload",
                                           "+Discovery", "+Nested"};

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    std::vector<TableRow> rows;
    std::vector<std::vector<double>> speedups(techs.size());
    for (const auto &[kernel, input] : benchmarkMatrix()) {
        PreparedWorkload pw(kernel, input, wp,
                            SimConfig().memoryBytes);
        const double ref =
            pw.run(SimConfig::baseline(Technique::kBase)).ipc();
        TableRow row{pw.label(), {}};
        for (size_t i = 0; i < techs.size(); ++i) {
            const double s =
                pw.run(SimConfig::baseline(techs[i])).ipc() / ref;
            row.values.push_back(s);
            speedups[i].push_back(s);
        }
        rows.push_back(std::move(row));
        std::cout << "." << std::flush;
    }
    std::cout << "\n";
    TableRow hmean{"h-mean", {}};
    for (auto &s : speedups)
        hmean.values.push_back(harmonicMean(s));
    rows.push_back(std::move(hmean));

    printTable(std::cout,
               "Figure 8: speedup over baseline OoO by DVR feature",
               cols, rows);
    std::cout << "\npaper shape: VR ~1.2x -> Offload ~1.5x -> Discovery"
                 " helps bc/bfs/sssp -> full DVR best (~2.4x).\n";
    return 0;
}
