/**
 * @file
 * Figure 8: DVR performance breakdown, normalized to the OoO
 * baseline: (1) Vector Runahead, (2) + Offload (a decoupled subthread
 * triggered on stride detection, no discovery), (3) + Discovery Mode,
 * (4) + Nested Runahead Mode (full DVR).
 *
 * Paper-expected shape: each addition helps on average; Discovery
 * particularly benefits bc/bfs/sssp (accuracy), can slightly hurt
 * cc/pr (whose out-of-bounds fetches happen to be useful); full DVR
 * is uniformly best.
 */

#include <deque>
#include <iostream>

#include "sim/config_schema.hh"
#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;
    printBenchHeader(std::cout, "Figure 8",
                     "DVR breakdown: VR / +Offload / +Discovery / +Nested");

    const std::vector<std::string> techs = {"vr", "dvr-offload",
                                            "dvr-discovery", "dvr"};
    const std::vector<std::string> cols = {"VR", "+Offload",
                                           "+Discovery", "+Nested"};

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    const SimConfig base = resolveConfigOrExit("base", argc, argv);

    Runner runner(Runner::jobsFromArgs(argc, argv));
    BenchReport report("fig08", runner.threads());

    std::deque<PreparedWorkload> prepared;
    std::vector<SimJob> jobs;
    for (const auto &[kernel, input] : benchmarkMatrix()) {
        prepared.emplace_back(kernel, input, wp, base.memoryBytes);
        const PreparedWorkload *pw = &prepared.back();
        jobs.push_back({pw, base, pw->label() + "/base"});
        for (const std::string &t : techs) {
            SimConfig cfg = base;
            cfg.technique = parseTechnique(t);
            jobs.push_back({pw, cfg, pw->label() + "/" + t});
        }
    }
    const std::vector<SimResult> results = runner.runAll(jobs);
    report.setConfig(base);
    for (size_t i = 0; i < results.size(); ++i)
        report.addResult(jobs[i].label, results[i]);

    std::vector<TableRow> rows;
    std::vector<std::vector<double>> speedups(techs.size());
    size_t j = 0;
    for (const PreparedWorkload &pw : prepared) {
        const double ref = results[j++].ipc();
        TableRow row{pw.label(), {}};
        for (size_t i = 0; i < techs.size(); ++i) {
            const double s = results[j++].ipc() / ref;
            row.values.push_back(s);
            speedups[i].push_back(s);
        }
        rows.push_back(std::move(row));
    }
    TableRow hmean{"h-mean", {}};
    for (auto &s : speedups)
        hmean.values.push_back(harmonicMean(s));
    rows.push_back(std::move(hmean));

    printTable(std::cout,
               "Figure 8: speedup over baseline OoO by DVR feature",
               cols, rows);
    std::cout << "\npaper shape: VR ~1.2x -> Offload ~1.5x -> Discovery"
                 " helps bc/bfs/sssp -> full DVR best (~2.4x).\n";
    printSweepSharing(std::cout, jobs.size(), prepared.size());
    return report.write(std::cout).empty() ? 1 : 0;
}
