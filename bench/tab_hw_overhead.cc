/**
 * @file
 * Section 4.4: the hardware overhead of every DVR structure, computed
 * from the same parameters the simulator uses. Reproduces the paper's
 * 1139-byte total exactly with the default configuration.
 */

#include <cstdio>
#include <iostream>

#include "runahead/hw_overhead.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace dvr;
    // No simulation here, but emit the perf-trajectory JSON so every
    // bench target produces a BENCH_*.json. Its "cow" block is all
    // zeros: this table copies no memory images.
    BenchReport report("tab_hw_overhead", 1);
    std::printf("\n== Section 4.4: DVR hardware overhead ==\n");
    std::printf("%-22s %8s\n", "structure", "bytes");
    unsigned total = 0;
    for (const auto &item : computeHwOverhead()) {
        std::printf("%-22s %8u\n", item.name.c_str(), item.bytes);
        total += item.bytes;
    }
    std::printf("%-22s %8u\n", "TOTAL", total);
    std::printf("\npaper total: 1139 bytes -> %s\n",
                total == 1139 ? "MATCH" : "MISMATCH");

    // Sensitivity: the 256-lane variant the paper mentions for
    // NAS-CG/IS ("wider 256-element DVR units").
    HwOverheadParams wide;
    wide.lanes = 256;
    wide.vratCopies = 32;
    wide.virCopies = 32;
    std::printf("256-lane DVR variant: %u bytes\n",
                totalHwOverheadBytes(wide));
    const bool wrote = !report.write(std::cout).empty();
    return (total == 1139 && wrote) ? 0 : 1;
}
