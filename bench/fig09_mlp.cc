/**
 * @file
 * Figure 9: memory-level parallelism, measured as average L1-D MSHR
 * occupancy per cycle, for the OoO baseline, VR, and DVR.
 *
 * Paper-expected shape: the OoO core sustains fewer than ~4
 * outstanding requests on average; DVR sustains more than ~10.
 */

#include <iostream>

#include "sim/experiment.hh"

int
main()
{
    using namespace dvr;
    printBenchHeader(std::cout, "Figure 9",
                     "MLP: average MSHRs in use per cycle");

    const std::vector<Technique> techs = {
        Technique::kBase, Technique::kVr, Technique::kDvr};
    const std::vector<std::string> cols = {"OoO", "VR", "DVR"};

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    std::vector<TableRow> rows;
    std::vector<std::vector<double>> agg(techs.size());
    for (const auto &[kernel, input] : benchmarkMatrix()) {
        PreparedWorkload pw(kernel, input, wp,
                            SimConfig().memoryBytes);
        TableRow row{pw.label(), {}};
        for (size_t i = 0; i < techs.size(); ++i) {
            const SimResult r =
                pw.run(SimConfig::baseline(techs[i]));
            row.values.push_back(r.mshrOccupancy());
            agg[i].push_back(r.mshrOccupancy());
        }
        rows.push_back(std::move(row));
        std::cout << "." << std::flush;
    }
    std::cout << "\n";
    TableRow mean{"average", {}};
    for (auto &a : agg)
        mean.values.push_back(arithmeticMean(a));
    rows.push_back(std::move(mean));

    printTable(std::cout, "Figure 9: average MSHR occupancy per cycle",
               cols, rows, 2);
    std::cout << "\npaper shape: OoO < 4 on average; DVR > 10; simple"
                 " workloads (pr, hpc-db) reach the highest raw MLP.\n";
    return 0;
}
