/**
 * @file
 * Figure 9: memory-level parallelism, measured as average L1-D MSHR
 * occupancy per cycle, for the OoO baseline, VR, and DVR.
 *
 * Paper-expected shape: the OoO core sustains fewer than ~4
 * outstanding requests on average; DVR sustains more than ~10.
 */

#include <deque>
#include <iostream>

#include "sim/config_schema.hh"
#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;
    printBenchHeader(std::cout, "Figure 9",
                     "MLP: average MSHRs in use per cycle");

    const std::vector<std::string> techs = {"base", "vr", "dvr"};
    const std::vector<std::string> cols = {"OoO", "VR", "DVR"};

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    const SimConfig base = resolveConfigOrExit("base", argc, argv);

    Runner runner(Runner::jobsFromArgs(argc, argv));
    BenchReport report("fig09", runner.threads());

    std::deque<PreparedWorkload> prepared;
    std::vector<SimJob> jobs;
    for (const auto &[kernel, input] : benchmarkMatrix()) {
        prepared.emplace_back(kernel, input, wp, base.memoryBytes);
        const PreparedWorkload *pw = &prepared.back();
        for (const std::string &t : techs) {
            SimConfig cfg = base;
            cfg.technique = parseTechnique(t);
            jobs.push_back({pw, cfg, pw->label() + "/" + t});
        }
    }
    const std::vector<SimResult> results = runner.runAll(jobs);
    report.setConfig(base);
    for (size_t i = 0; i < results.size(); ++i)
        report.addResult(jobs[i].label, results[i]);

    std::vector<TableRow> rows;
    std::vector<std::vector<double>> agg(techs.size());
    size_t j = 0;
    for (const PreparedWorkload &pw : prepared) {
        TableRow row{pw.label(), {}};
        for (size_t i = 0; i < techs.size(); ++i) {
            const double occ = results[j++].mshrOccupancy();
            row.values.push_back(occ);
            agg[i].push_back(occ);
        }
        rows.push_back(std::move(row));
    }
    TableRow mean{"average", {}};
    for (auto &a : agg)
        mean.values.push_back(arithmeticMean(a));
    rows.push_back(std::move(mean));

    printTable(std::cout, "Figure 9: average MSHR occupancy per cycle",
               cols, rows, 2);
    std::cout << "\npaper shape: OoO < 4 on average; DVR > 10; simple"
                 " workloads (pr, hpc-db) reach the highest raw MLP.\n";
    printSweepSharing(std::cout, jobs.size(), prepared.size());
    return report.write(std::cout).empty() ? 1 : 0;
}
