/**
 * @file
 * Figure 12: DVR performance as a function of ROB size, normalized to
 * the 350-entry OoO baseline -- including the variant where all
 * back-end queues scale with the ROB.
 *
 * Paper-expected shape: unlike VR (Figure 2), DVR's gains hold or
 * grow with ROB size because it never waits for a full-ROB stall
 * (1.9x/2.2x/2.2x/2.4x/2.5x at 128/192/224/350/512 in the paper).
 */

#include <deque>
#include <iostream>

#include "sim/config_schema.hh"
#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;
    printBenchHeader(std::cout, "Figure 12",
                     "DVR vs ROB size (gains persist at large ROBs)");

    const unsigned robs[] = {128, 192, 224, 350, 512};
    const std::vector<std::string> sweep = {"base", "dvr"};
    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    const SimConfig base = resolveConfigOrExit("base", argc, argv);

    const std::vector<std::pair<std::string, std::string>> bms = {
        {"bfs", "KR"}, {"bfs", "UR"}, {"cc", "KR"},
        {"pr", "KR"},  {"sssp", "KR"},
        {"camel", ""}, {"hj8", ""},   {"nas_is", ""},
    };

    std::vector<std::string> cols;
    for (unsigned r : robs)
        cols.push_back("OoO-" + std::to_string(r));
    for (unsigned r : robs)
        cols.push_back("DVR-" + std::to_string(r));

    Runner runner(Runner::jobsFromArgs(argc, argv));
    BenchReport report("fig12", runner.threads());

    std::deque<PreparedWorkload> prepared;
    std::vector<SimJob> jobs;
    for (const auto &[kernel, input] : bms) {
        prepared.emplace_back(kernel, input, wp, base.memoryBytes);
        const PreparedWorkload *pw = &prepared.back();
        jobs.push_back({pw, base, pw->label() + "/ref"});
        for (const std::string &t : sweep) {
            for (unsigned r : robs) {
                SimConfig cfg = base;
                cfg.technique = parseTechnique(t);
                cfg.core = CoreConfig::withRob(r, true);
                jobs.push_back({pw, cfg,
                                pw->label() + "/" + t + "-" +
                                    std::to_string(r)});
            }
        }
    }
    const std::vector<SimResult> results = runner.runAll(jobs);
    report.setConfig(base);
    for (size_t i = 0; i < results.size(); ++i)
        report.addResult(jobs[i].label, results[i]);

    std::vector<TableRow> rows;
    std::vector<std::vector<double>> agg(cols.size());
    size_t j = 0;
    for (const PreparedWorkload &pw : prepared) {
        const double ref = results[j++].ipc();
        TableRow row{pw.label(), {}};
        for (size_t i = 0; i < cols.size(); ++i)
            row.values.push_back(results[j++].ipc() / ref);
        for (size_t i = 0; i < cols.size(); ++i)
            agg[i].push_back(row.values[i]);
        rows.push_back(std::move(row));
    }
    TableRow hmean{"h-mean", {}};
    for (auto &a : agg)
        hmean.values.push_back(harmonicMean(a));
    rows.push_back(std::move(hmean));

    printTable(std::cout,
               "Figure 12: IPC normalized to OoO-350 (queues scaled)",
               cols, rows);
    std::cout << "\npaper shape: DVR's speedup over the same-size OoO"
                 " core holds or grows with ROB size\n(1.9x at 128"
                 " entries up to 2.5x at 512 in the paper).\n";
    printSweepSharing(std::cout, jobs.size(), prepared.size());
    return report.write(std::cout).empty() ? 1 : 0;
}
