/**
 * @file
 * Figure 2: performance of the OoO baseline and Vector Runahead as a
 * function of ROB size (128..512), normalized to the 350-entry OoO
 * baseline, together with the fraction of time the processor stalls
 * on a full ROB. Also reports VR's delayed-termination commit stall
 * (Section 3, insight 2: 7.1% average / 11.8% max in the paper).
 *
 * Paper-expected shape: VR's gain shrinks as the ROB grows; the
 * full-ROB stall fraction collapses (51% at 128 entries -> 5% at 512
 * in the paper); for some benchmarks VR's absolute performance drops
 * with a bigger ROB.
 */

#include <deque>
#include <iostream>

#include "sim/config_schema.hh"
#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;
    printBenchHeader(std::cout, "Figure 2",
                     "OoO and VR vs ROB size + full-ROB stall time");

    const unsigned robs[] = {128, 192, 224, 350, 512};
    const std::vector<std::string> sweep = {"base", "vr"};
    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    // Shared base config; --set/--config on the command line apply to
    // every job, and runOn derives per-technique knobs through the
    // registry's prepare hooks once the technique is stamped.
    const SimConfig base = resolveConfigOrExit("base", argc, argv);

    // A representative subset keeps the sweep tractable: one GAP
    // kernel per behaviour class plus the hpc-db set.
    const std::vector<std::pair<std::string, std::string>> bms = {
        {"bfs", "KR"}, {"bfs", "UR"}, {"cc", "KR"},
        {"pr", "KR"},  {"sssp", "KR"},
        {"camel", ""}, {"hj8", ""},   {"nas_is", ""},
    };

    std::vector<std::string> cols;
    for (unsigned r : robs)
        cols.push_back("OoO-" + std::to_string(r));
    for (unsigned r : robs)
        cols.push_back("VR-" + std::to_string(r));
    cols.push_back("stall%128");
    cols.push_back("stall%512");
    cols.push_back("VRdly%350");

    Runner runner(Runner::jobsFromArgs(argc, argv));
    BenchReport report("fig02", runner.threads());

    std::deque<PreparedWorkload> prepared;
    std::vector<SimJob> jobs;
    for (const auto &[kernel, input] : bms) {
        prepared.emplace_back(kernel, input, wp, base.memoryBytes);
        const PreparedWorkload *pw = &prepared.back();
        jobs.push_back({pw, base, pw->label() + "/ref"});
        for (const std::string &t : sweep) {
            for (unsigned r : robs) {
                SimConfig cfg = base;
                cfg.technique = parseTechnique(t);
                cfg.core = CoreConfig::withRob(r);
                jobs.push_back({pw, cfg,
                                pw->label() + "/" + t + "-" +
                                    std::to_string(r)});
            }
        }
    }
    const std::vector<SimResult> results = runner.runAll(jobs);
    report.setConfig(base);
    for (size_t i = 0; i < results.size(); ++i)
        report.addResult(jobs[i].label, results[i]);

    std::vector<TableRow> rows;
    std::vector<std::vector<double>> agg(cols.size());
    size_t j = 0;
    for (const PreparedWorkload &pw : prepared) {
        const double ref = results[j++].ipc();
        TableRow row{pw.label(), {}};
        double stall128 = 0, stall512 = 0, vr_dly = 0;
        for (const std::string &t : sweep) {
            for (unsigned r : robs) {
                const SimResult &res = results[j++];
                row.values.push_back(res.ipc() / ref);
                const double stall =
                    res.stats.get("core.rob_stall_cycles") /
                    double(res.core.cycles);
                if (t == "base" && r == 128)
                    stall128 = 100.0 * stall;
                if (t == "base" && r == 512)
                    stall512 = 100.0 * stall;
                if (t == "vr" && r == 350) {
                    vr_dly = 100.0 *
                             res.stats.get("core.runahead_extra_stall") /
                             double(res.core.cycles);
                }
            }
        }
        row.values.push_back(stall128);
        row.values.push_back(stall512);
        row.values.push_back(vr_dly);
        for (size_t i = 0; i < row.values.size(); ++i)
            agg[i].push_back(row.values[i]);
        rows.push_back(std::move(row));
    }
    TableRow mean{"h-mean/avg", {}};
    for (size_t i = 0; i < cols.size(); ++i) {
        mean.values.push_back(i < 10 ? harmonicMean(agg[i])
                                     : arithmeticMean(agg[i]));
    }
    rows.push_back(std::move(mean));

    printTable(std::cout,
               "Figure 2: IPC normalized to OoO-350 + stall fractions",
               cols, rows);
    std::cout << "\npaper shape: OoO IPC grows with ROB; VR's edge over"
                 " OoO shrinks as ROB grows;\nfull-ROB stall% drops"
                 " steeply from 128 to 512 entries (51% -> 5% in the"
                 " paper);\nVR delayed termination stalls commit ~7%"
                 " of cycles at 350 entries.\n";
    printSweepSharing(std::cout, jobs.size(), prepared.size());
    report.write(std::cout);
    return 0;
}
