/**
 * @file
 * Figure 2: performance of the OoO baseline and Vector Runahead as a
 * function of ROB size (128..512), normalized to the 350-entry OoO
 * baseline, together with the fraction of time the processor stalls
 * on a full ROB. Also reports VR's delayed-termination commit stall
 * (Section 3, insight 2: 7.1% average / 11.8% max in the paper).
 *
 * Paper-expected shape: VR's gain shrinks as the ROB grows; the
 * full-ROB stall fraction collapses (51% at 128 entries -> 5% at 512
 * in the paper); for some benchmarks VR's absolute performance drops
 * with a bigger ROB.
 *
 * With `--serve` the sweep runs through the dvr_serve daemon
 * (in-process workers) against a persistent spool under DVR_BENCH_DIR
 * (<dir>/serve_fig02): points dedupe against the content-addressed
 * result cache (the base-350 points are the reference runs under
 * another label, so they never execute twice), completed runs are
 * journaled, and a re-run — or a run killed part-way and restarted —
 * resumes instead of recomputing. The BENCH json gains a "serve"
 * block with the cache/journal counters; see docs/SERVING.md.
 */

#include <cstring>
#include <deque>
#include <iostream>
#include <map>

#if DVR_HAVE_SERVE
#include "serve/daemon.hh"
#include "serve/journal.hh"
#include "serve/json.hh"
#endif
#include "sim/config_schema.hh"
#include "sim/env.hh"
#include "sim/runner.hh"

namespace {

/** The per-run numbers the Figure 2 table consumes. */
struct RowStats
{
    double ipc = 0.0;
    double cycles = 0.0;
    double robStall = 0.0;
    double extraStall = 0.0;
    double instructions = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace dvr;
    printBenchHeader(std::cout, "Figure 2",
                     "OoO and VR vs ROB size + full-ROB stall time");

    bool serveMode = false;
    for (int i = 1; i < argc; ++i)
        serveMode = serveMode || std::strcmp(argv[i], "--serve") == 0;

    const unsigned robs[] = {128, 192, 224, 350, 512};
    const std::vector<std::string> sweep = {"base", "vr"};
    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    // Shared base config; --set/--config on the command line apply to
    // every job, and runOn derives per-technique knobs through the
    // registry's prepare hooks once the technique is stamped.
    const SimConfig base = resolveConfigOrExit("base", argc, argv);

    // A representative subset keeps the sweep tractable: one GAP
    // kernel per behaviour class plus the hpc-db set.
    const std::vector<std::pair<std::string, std::string>> bms = {
        {"bfs", "KR"}, {"bfs", "UR"}, {"cc", "KR"},
        {"pr", "KR"},  {"sssp", "KR"},
        {"camel", ""}, {"hj8", ""},   {"nas_is", ""},
    };
    auto labelOf = [](const std::string &kernel,
                      const std::string &input) {
        return input.empty() ? kernel : kernel + "_" + input;
    };

    std::vector<std::string> cols;
    for (unsigned r : robs)
        cols.push_back("OoO-" + std::to_string(r));
    for (unsigned r : robs)
        cols.push_back("VR-" + std::to_string(r));
    cols.push_back("stall%128");
    cols.push_back("stall%512");
    cols.push_back("VRdly%350");

    const unsigned threads = Runner::jobsFromArgs(argc, argv);
    BenchReport report("fig02", threads);
    report.setConfig(base);
    std::map<std::string, RowStats> vals;

    auto pointCfg = [&](const std::string &tech, unsigned rob) {
        SimConfig cfg = base;
        cfg.technique = parseTechnique(tech);
        cfg.core = CoreConfig::withRob(rob);
        return cfg;
    };

    if (serveMode) {
#if !DVR_HAVE_SERVE
        std::cerr << "fig02: this binary was built with "
                     "-DDVR_SERVE=OFF; --serve is unavailable\n";
        return 1;
#else
        const ConfigSchema &schema = ConfigSchema::instance();
        serve::JobSpec job;
        job.name = "fig02";
        job.scaleShift = wp.scaleShift;
        for (const ConfigSchema::Key &key : schema.keys())
            job.config.emplace_back(key.name, key.get(base));
        // A point's "set" is the dump-diff against the shared base,
        // so serve points resolve to exactly the configs the direct
        // path builds.
        auto diff = [&](const SimConfig &cfg) {
            std::vector<std::pair<std::string, std::string>> sets;
            for (const ConfigSchema::Key &key : schema.keys()) {
                const std::string v = key.get(cfg);
                if (v != key.get(base))
                    sets.emplace_back(key.name, v);
            }
            return sets;
        };
        for (const auto &[kernel, input] : bms) {
            const std::string lbl = labelOf(kernel, input);
            job.points.push_back({lbl + "/ref", kernel, input, {}});
            for (const std::string &t : sweep) {
                for (unsigned r : robs) {
                    job.points.push_back(
                        {lbl + "/" + t + "-" + std::to_string(r),
                         kernel, input, diff(pointCfg(t, r))});
                }
            }
        }

        serve::Daemon::Options opt;
        opt.spoolRoot =
            env::benchDir().value_or(".") + "/serve_fig02";
        opt.serve = base.serve;
        if (opt.serve.workers == 0)
            opt.serve.workers = threads;
        opt.inProcess = true;   // a bench cannot re-exec as a worker
        serve::Daemon daemon(opt);
        if (!daemon.init())
            return 1;
        daemon.spool().submit("fig02", job.toJson());
        if (daemon.runOnce() != 0) {
            std::cerr << "fig02 --serve: job failed (see "
                      << opt.spoolRoot << "/failed)\n";
            return 1;
        }

        serve::Journal journal(daemon.spool().journalDir() +
                               "/fig02.manifest.json");
        if (!journal.replay()) {
            std::cerr << "fig02 --serve: cannot replay journal\n";
            return 1;
        }
        for (const serve::JournalRun &run : journal.runs()) {
            serve::JsonValue stats;
            if (!serve::parseJson(run.statsJson, stats))
                continue;
            RowStats &v = vals[run.label];
            v.ipc = stats.getNumber("core.ipc");
            v.cycles = stats.getNumber("core.cycles");
            v.robStall = stats.getNumber("core.rob_stall_cycles");
            v.extraStall =
                stats.getNumber("core.runahead_extra_stall");
            v.instructions = stats.getNumber("core.instructions");
            report.addRunJson(run.label, run.statsJson);
            report.addInstructions(uint64_t(v.instructions));
        }
        for (double s : daemon.lastPriorSegments())
            report.addWallSegment(s);
        report.setExtra("serve", daemon.lastJob().toJson(2));
        const serve::ServeCounters &c = daemon.lastJob();
        std::cout << "\n[serve] " << c.pointsRun << "/"
                  << c.pointsTotal << " points run, "
                  << c.pointsDeduped << " deduped, " << c.cacheHits
                  << " cache hits, " << c.journalResumed
                  << " journal-resumed, " << c.retries
                  << " retries (spool " << opt.spoolRoot << ")\n";
#endif
    } else {
        Runner runner(threads);
        std::deque<PreparedWorkload> prepared;
        std::vector<SimJob> jobs;
        for (const auto &[kernel, input] : bms) {
            prepared.emplace_back(kernel, input, wp,
                                  base.memoryBytes);
            const PreparedWorkload *pw = &prepared.back();
            jobs.push_back({pw, base, pw->label() + "/ref"});
            for (const std::string &t : sweep) {
                for (unsigned r : robs) {
                    jobs.push_back({pw, pointCfg(t, r),
                                    pw->label() + "/" + t + "-" +
                                        std::to_string(r)});
                }
            }
        }
        const std::vector<SimResult> results = runner.runAll(jobs);
        for (size_t i = 0; i < results.size(); ++i) {
            const SimResult &r = results[i];
            report.addResult(jobs[i].label, r);
            vals[jobs[i].label] = {
                r.ipc(), double(r.core.cycles),
                r.stats.get("core.rob_stall_cycles"),
                r.stats.get("core.runahead_extra_stall"),
                double(r.core.instructions)};
        }
        printSweepSharing(std::cout, jobs.size(), prepared.size());
    }

    std::vector<TableRow> rows;
    std::vector<std::vector<double>> agg(cols.size());
    for (const auto &[kernel, input] : bms) {
        const std::string lbl = labelOf(kernel, input);
        const double ref = vals[lbl + "/ref"].ipc;
        TableRow row{lbl, {}};
        double stall128 = 0, stall512 = 0, vr_dly = 0;
        for (const std::string &t : sweep) {
            for (unsigned r : robs) {
                const RowStats &v =
                    vals[lbl + "/" + t + "-" + std::to_string(r)];
                row.values.push_back(ref > 0 ? v.ipc / ref : 0.0);
                const double stall =
                    v.cycles > 0 ? v.robStall / v.cycles : 0.0;
                if (t == "base" && r == 128)
                    stall128 = 100.0 * stall;
                if (t == "base" && r == 512)
                    stall512 = 100.0 * stall;
                if (t == "vr" && r == 350 && v.cycles > 0)
                    vr_dly = 100.0 * v.extraStall / v.cycles;
            }
        }
        row.values.push_back(stall128);
        row.values.push_back(stall512);
        row.values.push_back(vr_dly);
        for (size_t i = 0; i < row.values.size(); ++i)
            agg[i].push_back(row.values[i]);
        rows.push_back(std::move(row));
    }
    TableRow mean{"h-mean/avg", {}};
    for (size_t i = 0; i < cols.size(); ++i) {
        mean.values.push_back(i < 10 ? harmonicMean(agg[i])
                                     : arithmeticMean(agg[i]));
    }
    rows.push_back(std::move(mean));

    printTable(std::cout,
               "Figure 2: IPC normalized to OoO-350 + stall fractions",
               cols, rows);
    std::cout << "\npaper shape: OoO IPC grows with ROB; VR's edge over"
                 " OoO shrinks as ROB grows;\nfull-ROB stall% drops"
                 " steeply from 128 to 512 entries (51% -> 5% in the"
                 " paper);\nVR delayed termination stalls commit ~7%"
                 " of cycles at 350 entries.\n";
    return report.write(std::cout).empty() ? 1 : 0;
}
