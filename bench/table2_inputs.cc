/**
 * @file
 * Table 2: the graph inputs (scaled synthetic stand-ins) with node
 * and edge counts, degree statistics, and the LLC MPKI aggregated
 * over the five GAP kernels on the baseline OoO core.
 *
 * Paper values (at 3-134M nodes): LLC MPKI 19 (KR), 21 (LJN),
 * 18 (ORK), 61 (TW), 32 (UR). Our scaled graphs should land in the
 * same tens-of-MPKI regime, with TW/UR toward the top.
 */

#include <deque>
#include <iostream>

#include "graph/generators.hh"
#include "mem/sim_memory.hh"
#include "sim/config_schema.hh"
#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;
    printBenchHeader(std::cout, "Table 2",
                     "graph inputs and baseline LLC MPKI");

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    const SimConfig base = resolveConfigOrExit("base", argc, argv);

    const std::vector<std::string> cols = {
        "nodes(K)", "edges(K)", "avg-deg", "max-deg", "LLC-MPKI"};

    Runner runner(Runner::jobsFromArgs(argc, argv));
    BenchReport report("table2", runner.threads());

    // Graph statistics from throwaway builds, and one baseline job
    // per (GAP kernel, input).
    std::vector<TableRow> rows;
    std::deque<PreparedWorkload> prepared;
    std::vector<SimJob> jobs;
    for (const auto &spec : graphInputs()) {
        SimMemory mem(base.memoryBytes);
        CsrGraph g = buildCsr(mem, inputNodes(spec, wp.scaleShift),
                              makeInputEdges(spec, wp.scaleShift));
        rows.push_back({spec.name,
                        {double(g.numNodes) / 1e3,
                         double(g.numEdges) / 1e3, g.avgDegree(),
                         double(g.maxDegree())}});
        for (const auto &kernel : gapKernels()) {
            prepared.emplace_back(kernel, spec.name, wp,
                                  base.memoryBytes);
            jobs.push_back({&prepared.back(), base,
                            prepared.back().label()});
        }
    }
    const std::vector<SimResult> results = runner.runAll(jobs);
    report.setConfig(base);
    for (size_t i = 0; i < results.size(); ++i)
        report.addResult(jobs[i].label, results[i]);

    // LLC MPKI aggregated over the five GAP kernels per input.
    size_t j = 0;
    for (auto &row : rows) {
        double misses = 0, insts = 0;
        for (size_t k = 0; k < gapKernels().size(); ++k) {
            const SimResult &r = results[j++];
            misses += r.stats.get("mem.llc_misses");
            insts += double(r.core.instructions);
        }
        row.values.push_back(1000.0 * misses / insts);
    }

    printTable(std::cout,
               "Table 2: graph inputs (synthetic stand-ins) + MPKI",
               cols, rows, 1);
    std::cout << "\npaper values (full-size graphs): MPKI 19 KR /"
                 " 21 LJN / 18 ORK / 61 TW / 32 UR.\n";
    printSweepSharing(std::cout, jobs.size(), prepared.size());
    return report.write(std::cout).empty() ? 1 : 0;
}
