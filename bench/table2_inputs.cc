/**
 * @file
 * Table 2: the graph inputs (scaled synthetic stand-ins) with node
 * and edge counts, degree statistics, and the LLC MPKI aggregated
 * over the five GAP kernels on the baseline OoO core.
 *
 * Paper values (at 3-134M nodes): LLC MPKI 19 (KR), 21 (LJN),
 * 18 (ORK), 61 (TW), 32 (UR). Our scaled graphs should land in the
 * same tens-of-MPKI regime, with TW/UR toward the top.
 */

#include <iostream>

#include "graph/generators.hh"
#include "mem/sim_memory.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace dvr;
    printBenchHeader(std::cout, "Table 2",
                     "graph inputs and baseline LLC MPKI");

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    const std::vector<std::string> cols = {
        "nodes(K)", "edges(K)", "avg-deg", "max-deg", "LLC-MPKI"};
    std::vector<TableRow> rows;
    for (const auto &spec : graphInputs()) {
        // Graph statistics from a throwaway build.
        SimMemory mem(SimConfig().memoryBytes);
        CsrGraph g = buildCsr(mem, inputNodes(spec, wp.scaleShift),
                              makeInputEdges(spec, wp.scaleShift));
        TableRow row{spec.name,
                     {double(g.numNodes) / 1e3,
                      double(g.numEdges) / 1e3, g.avgDegree(),
                      double(g.maxDegree())}};

        // LLC MPKI aggregated over the five GAP kernels.
        double misses = 0, insts = 0;
        for (const auto &kernel : gapKernels()) {
            PreparedWorkload pw(kernel, spec.name, wp,
                                SimConfig().memoryBytes);
            const SimResult r =
                pw.run(SimConfig::baseline(Technique::kBase));
            misses += r.stats.get("mem.llc_misses");
            insts += double(r.core.instructions);
            std::cout << "." << std::flush;
        }
        row.values.push_back(1000.0 * misses / insts);
        rows.push_back(std::move(row));
    }
    std::cout << "\n";

    printTable(std::cout,
               "Table 2: graph inputs (synthetic stand-ins) + MPKI",
               cols, rows, 1);
    std::cout << "\npaper values (full-size graphs): MPKI 19 KR /"
                 " 21 LJN / 18 ORK / 61 TW / 32 UR.\n";
    return 0;
}
