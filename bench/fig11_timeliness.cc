/**
 * @file
 * Figure 11: timeliness of DVR's prefetches -- where the main thread
 * finds the cachelines DVR prefetched: L1-D, L2, L3, or "off-chip"
 * (still in flight from memory, or prefetched but never used).
 *
 * Paper-expected shape: most lines are found in the L1-D, some in
 * L2/L3 after eviction; a consistent 10-20% observe a latency beyond
 * the LLC because the prefetch was issued too late (the episodes
 * overlap the main thread's own progress).
 */

#include <algorithm>
#include <deque>
#include <iostream>

#include "sim/config_schema.hh"
#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;
    printBenchHeader(std::cout, "Figure 11",
                     "where the main thread finds DVR-prefetched lines");

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    const SimConfig base = resolveConfigOrExit("dvr", argc, argv);

    const std::vector<std::string> cols = {"L1%", "L2%", "L3%",
                                           "off-chip%"};

    Runner runner(Runner::jobsFromArgs(argc, argv));
    BenchReport report("fig11", runner.threads());

    std::deque<PreparedWorkload> prepared;
    std::vector<SimJob> jobs;
    for (const auto &[kernel, input] : benchmarkMatrix()) {
        prepared.emplace_back(kernel, input, wp, base.memoryBytes);
        const PreparedWorkload *pw = &prepared.back();
        jobs.push_back({pw, base, pw->label() + "/dvr"});
    }
    const std::vector<SimResult> results = runner.runAll(jobs);
    report.setConfig(base);
    for (size_t i = 0; i < results.size(); ++i)
        report.addResult(jobs[i].label, results[i]);

    std::vector<TableRow> rows;
    std::vector<std::vector<double>> agg(cols.size());
    size_t j = 0;
    for (const PreparedWorkload &pw : prepared) {
        const SimResult &r = results[j++];
        const double l1 = r.stats.get("mem.ra_found_l1");
        const double l2 = r.stats.get("mem.ra_found_l2");
        const double l3 = r.stats.get("mem.ra_found_l3");
        // Off-chip: prefetched lines the main thread had to wait for
        // (still in flight / refetched) or never used at all.
        const double off = r.stats.get("mem.ra_found_late") +
                           r.stats.get("mem.ra_unused");
        const double total = std::max(1.0, l1 + l2 + l3 + off);
        TableRow row{pw.label(),
                     {100.0 * l1 / total, 100.0 * l2 / total,
                      100.0 * l3 / total, 100.0 * off / total}};
        for (size_t i = 0; i < cols.size(); ++i)
            agg[i].push_back(row.values[i]);
        rows.push_back(std::move(row));
    }
    TableRow mean{"average", {}};
    for (auto &a : agg)
        mean.values.push_back(arithmeticMean(a));
    rows.push_back(std::move(mean));

    printTable(std::cout,
               "Figure 11: DVR prefetch timeliness (% of prefetched "
               "lines)",
               cols, rows, 1);
    std::cout << "\npaper shape: mostly L1 hits, some L2/L3 after"
                 " eviction, 10-20% beyond the LLC (too-late"
                 " prefetches, not inaccuracy).\n";
    printSweepSharing(std::cout, jobs.size(), prepared.size());
    return report.write(std::cout).empty() ? 1 : 0;
}
