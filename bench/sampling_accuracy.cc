/**
 * @file
 * Sampled-vs-exact accuracy and speedup bench (fig02-style subset).
 *
 * For each benchmark, one exact detailed run and one interval-sampled
 * run (sim.sample.*) execute the same instruction budget; the bench
 * reports per-benchmark CPI error, the sampled run's confidence
 * interval, and the wall-clock speedup, plus the pre-decoded
 * functional interpreter's throughput gain over the legacy loop. The
 * aggregate lands in the BENCH json "sampling" block, which
 * tools/check_throughput.py enforces floors on in CI.
 *
 * The sampling interval adapts to the budget (defaultSampleInterval,
 * the same policy as dvr_run --sample): at the CI smoke scale (500k
 * insts) the detailed fraction per interval is ~12% and the speedup
 * floor is 3x; at a paper-scale 500M-inst ROI (DVR_INSTS=500000000)
 * the detailed fraction drops to ~0.03% and wall-clock speedup exceeds
 * 10x.
 */

#include <chrono>
#include <cmath>
#include <deque>
#include <iostream>
#include <sstream>

#include "sim/config_schema.hh"
#include "sim/functional_core.hh"
#include "sim/runner.hh"
#include "sim/sampling.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;
    printBenchHeader(std::cout, "sampling",
                     "interval-sampled vs exact: CPI error + speedup");

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    SimConfig exact = resolveConfigOrExit("base", argc, argv);
    SimConfig sampled = exact;
    if (sampled.sample.interval == 0) {
        sampled.sample.interval =
            defaultSampleInterval(sampled.maxInstructions);
    }

    // One GAP kernel per behaviour class plus hpc-db representatives
    // (the fig02 subset, trimmed to keep the exact leg affordable).
    const std::vector<std::pair<std::string, std::string>> bms = {
        {"bfs", "KR"}, {"pr", "KR"}, {"camel", ""}, {"hj8", ""},
    };

    BenchReport report("sampling", 1);
    report.setConfig(sampled);

    // Functional-throughput gain of the pre-decoded interpreter over
    // the legacy Program-stepping loop. The headline (CI-floored)
    // number runs the dispatch microbench, whose working set is
    // host-cache resident, isolating the dispatch machinery the
    // pre-decode refactor changed; the first real benchmark's gain is
    // reported alongside — it is smaller because both interpreters
    // stall on the same host misses against the big workload image.
    std::deque<PreparedWorkload> prepared;
    for (const auto &[kernel, input] : bms)
        prepared.emplace_back(kernel, input, wp, exact.memoryBytes);
    const DispatchMicrobench mb = makeDispatchMicrobench();
    const FunctionalThroughput ft = measureFunctionalThroughput(
        mb.program, mb.image,
        std::min<uint64_t>(4'000'000, exact.maxInstructions * 2));
    const FunctionalThroughput ftw = measureFunctionalThroughput(
        prepared.front().workload().program, prepared.front().memory(),
        std::min<uint64_t>(2'000'000, exact.maxInstructions * 2));

    std::vector<std::string> cols = {"CPI-exact", "CPI-sampled",
                                     "err%",      "ci95%",
                                     "windows",   "speedup"};
    std::vector<TableRow> rows;
    double err_sum = 0, err_max = 0, speedup_sum = 0;
    double speedup_min = 0, ci_sum = 0, windows_sum = 0;
    bool first = true;

    for (const PreparedWorkload &pw : prepared) {
        const auto t0 = std::chrono::steady_clock::now();
        const SimResult re = pw.run(exact);
        const auto t1 = std::chrono::steady_clock::now();
        const SimResult rs = pw.run(sampled);
        const auto t2 = std::chrono::steady_clock::now();
        report.addResult(pw.label() + "/exact", re);
        report.addResult(pw.label() + "/sampled", rs);

        const double exact_secs =
            std::chrono::duration<double>(t1 - t0).count();
        const double sampled_secs =
            std::chrono::duration<double>(t2 - t1).count();
        const double cpi_e = re.ipc() > 0 ? 1.0 / re.ipc() : 0.0;
        const double cpi_s = rs.ipc() > 0 ? 1.0 / rs.ipc() : 0.0;
        const double err =
            cpi_e > 0 ? std::abs(cpi_s - cpi_e) / cpi_e : 0.0;
        const double speedup =
            sampled_secs > 0 ? exact_secs / sampled_secs : 0.0;
        const double ci_rel = rs.stats.get("sample.cpi_rel_ci95");
        const double windows = rs.stats.get("sample.windows");

        err_sum += err;
        err_max = std::max(err_max, err);
        speedup_sum += speedup;
        speedup_min =
            first ? speedup : std::min(speedup_min, speedup);
        ci_sum += ci_rel;
        windows_sum += windows;
        first = false;

        rows.push_back({pw.label(),
                        {cpi_e, cpi_s, 100.0 * err, 100.0 * ci_rel,
                         windows, speedup}});
    }
    const double n = double(prepared.size());
    rows.push_back({"mean",
                    {0, 0, 100.0 * err_sum / n, 100.0 * ci_sum / n,
                     windows_sum / n, speedup_sum / n}});

    printTable(std::cout,
               "sampled vs exact (interval " +
                   std::to_string(sampled.sample.interval) +
                   ", warmup " + std::to_string(sampled.sample.warmup) +
                   ", window " + std::to_string(sampled.sample.window) +
                   ")",
               cols, rows);
    std::cout << "\nfunctional interpreter (dispatch microbench): "
              << std::fixed << "pre-decoded " << ft.fastMips
              << " MIPS vs legacy " << ft.referenceMips << " MIPS ("
              << ft.gain << "x gain over " << ft.insts << " insts)\n"
              << "functional interpreter (" << prepared.front().label()
              << ", host-memory-bound): pre-decoded " << ftw.fastMips
              << " MIPS vs legacy " << ftw.referenceMips << " MIPS ("
              << ftw.gain << "x gain)\n";

    std::ostringstream blk;
    blk << std::fixed << "{\n"
        << "    \"interval\": " << sampled.sample.interval << ",\n"
        << "    \"warmup\": " << sampled.sample.warmup << ",\n"
        << "    \"window\": " << sampled.sample.window << ",\n"
        << "    \"warm\": " << sampled.sample.warm << ",\n"
        << "    \"benchmarks\": " << prepared.size() << ",\n"
        << "    \"cpi_error_mean\": " << err_sum / n << ",\n"
        << "    \"cpi_error_max\": " << err_max << ",\n"
        << "    \"ci_rel_mean\": " << ci_sum / n << ",\n"
        << "    \"windows_mean\": " << windows_sum / n << ",\n"
        << "    \"speedup_mean\": " << speedup_sum / n << ",\n"
        << "    \"speedup_min\": " << speedup_min << ",\n"
        << "    \"functional_gain\": " << ft.gain << ",\n"
        << "    \"functional_mips_fast\": " << ft.fastMips << ",\n"
        << "    \"functional_mips_reference\": " << ft.referenceMips
        << ",\n"
        << "    \"functional_gain_workload\": " << ftw.gain << ",\n"
        << "    \"functional_mips_workload\": " << ftw.fastMips
        << "\n  }";
    report.setExtra("sampling", blk.str());
    return report.write(std::cout).empty() ? 1 : 0;
}
