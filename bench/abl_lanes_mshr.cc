/**
 * @file
 * Ablations beyond the paper's figures, probing the design choices
 * DESIGN.md calls out:
 *   (a) DVR lane count {32, 64, 128, 256} -- the paper argues 256
 *       lanes would close the Oracle gap on NAS-CG/IS;
 *   (b) L1-D MSHR count {12, 24, 48} -- the resource that bounds the
 *       achievable MLP;
 *   (c) GPU-style reconvergence vs VR-style lane invalidation inside
 *       the DVR subthread (insight #5).
 */

#include <deque>
#include <iostream>

#include "sim/config_schema.hh"
#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;
    printBenchHeader(std::cout, "Ablation",
                     "lanes / MSHRs / reconvergence in DVR");

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    const SimConfig base = resolveConfigOrExit("base", argc, argv);
    const ConfigSchema &schema = ConfigSchema::instance();
    auto dvrCfg = [&](const std::string &key,
                      const std::string &value) {
        SimConfig cfg = base;
        cfg.technique = parseTechnique("dvr");
        if (!key.empty())
            schema.set(cfg, key, value);
        return cfg;
    };

    const std::vector<std::pair<std::string, std::string>> bms = {
        {"bfs", "KR"}, {"sssp", "KR"}, {"camel", ""},
        {"hj8", ""},   {"nas_cg", ""}, {"nas_is", ""},
    };

    const std::vector<std::string> cols = {
        "lanes32", "lanes64", "lanes128", "lanes256",
        "mshr12",  "mshr48",  "no-reconv"};

    Runner runner(Runner::jobsFromArgs(argc, argv));
    BenchReport report("abl_lanes_mshr", runner.threads());

    std::deque<PreparedWorkload> prepared;
    std::vector<SimJob> jobs;
    for (const auto &[kernel, input] : bms) {
        prepared.emplace_back(kernel, input, wp, base.memoryBytes);
        const PreparedWorkload *pw = &prepared.back();
        jobs.push_back({pw, base, pw->label() + "/ref"});
        for (unsigned lanes : {32u, 64u, 128u, 256u}) {
            // dvr.lanes scales vecPhysFree with the lane count.
            jobs.push_back({pw,
                            dvrCfg("dvr.lanes",
                                   std::to_string(lanes)),
                            pw->label() + "/lanes" +
                                std::to_string(lanes)});
        }
        for (unsigned mshrs : {12u, 48u}) {
            jobs.push_back({pw,
                            dvrCfg("mem.l1dMshrs",
                                   std::to_string(mshrs)),
                            pw->label() + "/mshr" +
                                std::to_string(mshrs)});
        }
        jobs.push_back({pw, dvrCfg("dvr.gpuReconvergence", "false"),
                        pw->label() + "/no-reconv"});
    }
    const std::vector<SimResult> results = runner.runAll(jobs);
    report.setConfig(base);
    for (size_t i = 0; i < results.size(); ++i)
        report.addResult(jobs[i].label, results[i]);

    std::vector<TableRow> rows;
    size_t j = 0;
    for (const PreparedWorkload &pw : prepared) {
        const double ref = results[j++].ipc();
        TableRow row{pw.label(), {}};
        for (size_t i = 0; i < cols.size(); ++i)
            row.values.push_back(results[j++].ipc() / ref);
        rows.push_back(std::move(row));
    }

    printTable(std::cout,
               "Ablation: DVR speedup over baseline per configuration",
               cols, rows);
    std::cout << "\nexpected: speedup grows with lanes (NAS kernels"
                 " benefit most from 256);\nmore MSHRs lift the MLP"
                 " ceiling; disabling reconvergence hurts divergent\n"
                 "kernels (bfs, sssp) but not straight chains"
                 " (camel, hj8).\n";
    printSweepSharing(std::cout, jobs.size(), prepared.size());
    return report.write(std::cout).empty() ? 1 : 0;
}
