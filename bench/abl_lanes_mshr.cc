/**
 * @file
 * Ablations beyond the paper's figures, probing the design choices
 * DESIGN.md calls out:
 *   (a) DVR lane count {32, 64, 128, 256} -- the paper argues 256
 *       lanes would close the Oracle gap on NAS-CG/IS;
 *   (b) L1-D MSHR count {12, 24, 48} -- the resource that bounds the
 *       achievable MLP;
 *   (c) GPU-style reconvergence vs VR-style lane invalidation inside
 *       the DVR subthread (insight #5).
 */

#include <iostream>

#include "sim/experiment.hh"

int
main()
{
    using namespace dvr;
    printBenchHeader(std::cout, "Ablation",
                     "lanes / MSHRs / reconvergence in DVR");

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    const std::vector<std::pair<std::string, std::string>> bms = {
        {"bfs", "KR"}, {"sssp", "KR"}, {"camel", ""},
        {"hj8", ""},   {"nas_cg", ""}, {"nas_is", ""},
    };

    const std::vector<std::string> cols = {
        "lanes32", "lanes64", "lanes128", "lanes256",
        "mshr12",  "mshr48",  "no-reconv"};

    std::vector<TableRow> rows;
    for (const auto &[kernel, input] : bms) {
        PreparedWorkload pw(kernel, input, wp,
                            SimConfig().memoryBytes);
        const double ref =
            pw.run(SimConfig::baseline(Technique::kBase)).ipc();
        TableRow row{pw.label(), {}};

        for (unsigned lanes : {32u, 64u, 128u, 256u}) {
            SimConfig cfg = SimConfig::baseline(Technique::kDvr);
            cfg.dvr.subthread.maxLanes = lanes;
            cfg.dvr.subthread.vecPhysFree =
                lanes;  // phys regs scale with lane count
            row.values.push_back(pw.run(cfg).ipc() / ref);
        }
        for (unsigned mshrs : {12u, 48u}) {
            SimConfig cfg = SimConfig::baseline(Technique::kDvr);
            cfg.mem.mshrs = mshrs;
            row.values.push_back(pw.run(cfg).ipc() / ref);
        }
        {
            SimConfig cfg = SimConfig::baseline(Technique::kDvr);
            cfg.dvr.subthread.gpuReconvergence = false;
            row.values.push_back(pw.run(cfg).ipc() / ref);
        }
        rows.push_back(std::move(row));
        std::cout << "." << std::flush;
    }
    std::cout << "\n";

    printTable(std::cout,
               "Ablation: DVR speedup over baseline per configuration",
               cols, rows);
    std::cout << "\nexpected: speedup grows with lanes (NAS kernels"
                 " benefit most from 256);\nmore MSHRs lift the MLP"
                 " ceiling; disabling reconvergence hurts divergent\n"
                 "kernels (bfs, sssp) but not straight chains"
                 " (camel, hj8).\n";
    return 0;
}
