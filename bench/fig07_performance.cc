/**
 * @file
 * Figure 7: normalized performance of PRE, IMP, VR, DVR, and Oracle
 * relative to the baseline OoO core, for every benchmark-input
 * combination, with the harmonic mean across the suite.
 *
 * Paper-expected shape: PRE ~1x, IMP modest (wins on simple-indirect
 * kernels like cc/camel/nas_is), VR ~1.2x h-mean, DVR ~2.4x h-mean
 * (up to 6.4x) approaching the Oracle.
 */

#include <iostream>

#include "sim/experiment.hh"

int
main()
{
    using namespace dvr;
    printBenchHeader(std::cout, "Figure 7",
                     "normalized performance of all techniques");

    const std::vector<Technique> techs = {
        Technique::kPre, Technique::kImp, Technique::kVr,
        Technique::kDvr, Technique::kOracle};
    std::vector<std::string> cols = {"OoO-IPC"};
    for (Technique t : techs)
        cols.push_back(techniqueName(t));

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    std::vector<TableRow> rows;
    std::vector<std::vector<double>> speedups(techs.size());
    for (const auto &[kernel, input] : benchmarkMatrix()) {
        PreparedWorkload pw(kernel, input, wp,
                            SimConfig().memoryBytes);
        SimConfig base = SimConfig::baseline(Technique::kBase);
        const SimResult rb = pw.run(base);
        TableRow row{pw.label(), {rb.ipc()}};
        for (size_t i = 0; i < techs.size(); ++i) {
            SimConfig cfg = SimConfig::baseline(techs[i]);
            const SimResult r = pw.run(cfg);
            const double s = r.ipc() / rb.ipc();
            row.values.push_back(s);
            speedups[i].push_back(s);
        }
        rows.push_back(std::move(row));
        std::cout << "." << std::flush;
    }
    std::cout << "\n";

    TableRow hmean{"h-mean", {0.0}};
    for (auto &s : speedups)
        hmean.values.push_back(harmonicMean(s));
    rows.push_back(std::move(hmean));

    printTable(std::cout,
               "Figure 7: speedup over baseline OoO (350-entry ROB)",
               cols, rows);
    std::cout << "\npaper shape: h-mean VR ~1.2x, DVR ~2.4x (max 6.4x),"
                 " DVR close to Oracle;\nIMP > VR on simple-indirect"
                 " kernels; VR can lose on bfs_UR.\n";
    return 0;
}
