/**
 * @file
 * Figure 7: normalized performance of PRE, IMP, VR, DVR, and Oracle
 * relative to the baseline OoO core, for every benchmark-input
 * combination, with the harmonic mean across the suite.
 *
 * Paper-expected shape: PRE ~1x, IMP modest (wins on simple-indirect
 * kernels like cc/camel/nas_is), VR ~1.2x h-mean, DVR ~2.4x h-mean
 * (up to 6.4x) approaching the Oracle.
 */

#include <deque>
#include <iostream>

#include "sim/config_schema.hh"
#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;
    printBenchHeader(std::cout, "Figure 7",
                     "normalized performance of all techniques");

    const std::vector<std::string> techs = {"pre", "imp", "vr", "dvr",
                                            "oracle"};
    std::vector<std::string> cols = {"OoO-IPC"};
    for (const std::string &t : techs)
        cols.push_back(t);

    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();

    const SimConfig base = resolveConfigOrExit("base", argc, argv);

    Runner runner(Runner::jobsFromArgs(argc, argv));
    BenchReport report("fig07", runner.threads());

    // Build each data set once; share it read-only across all jobs.
    std::deque<PreparedWorkload> prepared;
    std::vector<SimJob> jobs;
    for (const auto &[kernel, input] : benchmarkMatrix()) {
        prepared.emplace_back(kernel, input, wp, base.memoryBytes);
        const PreparedWorkload *pw = &prepared.back();
        jobs.push_back({pw, base, pw->label() + "/base"});
        for (const std::string &t : techs) {
            SimConfig cfg = base;
            cfg.technique = parseTechnique(t);
            jobs.push_back({pw, cfg, pw->label() + "/" + t});
        }
    }
    const std::vector<SimResult> results = runner.runAll(jobs);
    report.setConfig(base);
    for (size_t i = 0; i < results.size(); ++i)
        report.addResult(jobs[i].label, results[i]);

    std::vector<TableRow> rows;
    std::vector<std::vector<double>> speedups(techs.size());
    size_t j = 0;
    for (const PreparedWorkload &pw : prepared) {
        const SimResult &rb = results[j++];
        TableRow row{pw.label(), {rb.ipc()}};
        for (size_t i = 0; i < techs.size(); ++i) {
            const double s = results[j++].ipc() / rb.ipc();
            row.values.push_back(s);
            speedups[i].push_back(s);
        }
        rows.push_back(std::move(row));
    }

    TableRow hmean{"h-mean", {0.0}};
    for (auto &s : speedups)
        hmean.values.push_back(harmonicMean(s));
    rows.push_back(std::move(hmean));

    printTable(std::cout,
               "Figure 7: speedup over baseline OoO (350-entry ROB)",
               cols, rows);
    std::cout << "\npaper shape: h-mean VR ~1.2x, DVR ~2.4x (max 6.4x),"
                 " DVR close to Oracle;\nIMP > VR on simple-indirect"
                 " kernels; VR can lose on bfs_UR.\n";
    printSweepSharing(std::cout, jobs.size(), prepared.size());
    return report.write(std::cout).empty() ? 1 : 0;
}
