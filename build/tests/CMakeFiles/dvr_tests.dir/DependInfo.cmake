
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_branch_predictor.cc" "tests/CMakeFiles/dvr_tests.dir/test_branch_predictor.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_branch_predictor.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/dvr_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_controllers.cc" "tests/CMakeFiles/dvr_tests.dir/test_controllers.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_controllers.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/dvr_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/dvr_tests.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_differential.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/dvr_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_hw_overhead.cc" "tests/CMakeFiles/dvr_tests.dir/test_hw_overhead.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_hw_overhead.cc.o.d"
  "/root/repo/tests/test_io.cc" "tests/CMakeFiles/dvr_tests.dir/test_io.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_io.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/dvr_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/dvr_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_memory_system.cc" "tests/CMakeFiles/dvr_tests.dir/test_memory_system.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_memory_system.cc.o.d"
  "/root/repo/tests/test_nested.cc" "tests/CMakeFiles/dvr_tests.dir/test_nested.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_nested.cc.o.d"
  "/root/repo/tests/test_paper_claims.cc" "tests/CMakeFiles/dvr_tests.dir/test_paper_claims.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_paper_claims.cc.o.d"
  "/root/repo/tests/test_prefetchers.cc" "tests/CMakeFiles/dvr_tests.dir/test_prefetchers.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_prefetchers.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/dvr_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_runahead_units.cc" "tests/CMakeFiles/dvr_tests.dir/test_runahead_units.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_runahead_units.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/dvr_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/dvr_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_subthread.cc" "tests/CMakeFiles/dvr_tests.dir/test_subthread.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_subthread.cc.o.d"
  "/root/repo/tests/test_workload_structure.cc" "tests/CMakeFiles/dvr_tests.dir/test_workload_structure.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_workload_structure.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/dvr_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/dvr_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_runahead.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
