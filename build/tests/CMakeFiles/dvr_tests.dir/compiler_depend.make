# Empty compiler generated dependencies file for dvr_tests.
# This may be replaced when dependencies are built.
