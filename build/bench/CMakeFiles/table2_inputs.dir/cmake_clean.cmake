file(REMOVE_RECURSE
  "CMakeFiles/table2_inputs.dir/table2_inputs.cc.o"
  "CMakeFiles/table2_inputs.dir/table2_inputs.cc.o.d"
  "table2_inputs"
  "table2_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
