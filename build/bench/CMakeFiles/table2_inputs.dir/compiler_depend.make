# Empty compiler generated dependencies file for table2_inputs.
# This may be replaced when dependencies are built.
