# Empty compiler generated dependencies file for tab_hw_overhead.
# This may be replaced when dependencies are built.
