file(REMOVE_RECURSE
  "CMakeFiles/tab_hw_overhead.dir/tab_hw_overhead.cc.o"
  "CMakeFiles/tab_hw_overhead.dir/tab_hw_overhead.cc.o.d"
  "tab_hw_overhead"
  "tab_hw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_hw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
