file(REMOVE_RECURSE
  "CMakeFiles/fig09_mlp.dir/fig09_mlp.cc.o"
  "CMakeFiles/fig09_mlp.dir/fig09_mlp.cc.o.d"
  "fig09_mlp"
  "fig09_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
