# Empty compiler generated dependencies file for fig09_mlp.
# This may be replaced when dependencies are built.
