# Empty compiler generated dependencies file for fig12_dvr_rob_sweep.
# This may be replaced when dependencies are built.
