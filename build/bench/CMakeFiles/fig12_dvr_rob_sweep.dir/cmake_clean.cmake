file(REMOVE_RECURSE
  "CMakeFiles/fig12_dvr_rob_sweep.dir/fig12_dvr_rob_sweep.cc.o"
  "CMakeFiles/fig12_dvr_rob_sweep.dir/fig12_dvr_rob_sweep.cc.o.d"
  "fig12_dvr_rob_sweep"
  "fig12_dvr_rob_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dvr_rob_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
