# Empty dependencies file for fig02_rob_sweep.
# This may be replaced when dependencies are built.
