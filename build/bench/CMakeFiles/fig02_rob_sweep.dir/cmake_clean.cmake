file(REMOVE_RECURSE
  "CMakeFiles/fig02_rob_sweep.dir/fig02_rob_sweep.cc.o"
  "CMakeFiles/fig02_rob_sweep.dir/fig02_rob_sweep.cc.o.d"
  "fig02_rob_sweep"
  "fig02_rob_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_rob_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
