# Empty compiler generated dependencies file for fig10_accuracy.
# This may be replaced when dependencies are built.
