# Empty compiler generated dependencies file for abl_lanes_mshr.
# This may be replaced when dependencies are built.
