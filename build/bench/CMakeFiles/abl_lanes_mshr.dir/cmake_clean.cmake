file(REMOVE_RECURSE
  "CMakeFiles/abl_lanes_mshr.dir/abl_lanes_mshr.cc.o"
  "CMakeFiles/abl_lanes_mshr.dir/abl_lanes_mshr.cc.o.d"
  "abl_lanes_mshr"
  "abl_lanes_mshr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lanes_mshr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
