
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runahead/discovery.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/discovery.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/discovery.cc.o.d"
  "/root/repo/src/runahead/dvr_controller.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/dvr_controller.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/dvr_controller.cc.o.d"
  "/root/repo/src/runahead/hw_overhead.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/hw_overhead.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/hw_overhead.cc.o.d"
  "/root/repo/src/runahead/loop_bound.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/loop_bound.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/loop_bound.cc.o.d"
  "/root/repo/src/runahead/oracle.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/oracle.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/oracle.cc.o.d"
  "/root/repo/src/runahead/pre_controller.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/pre_controller.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/pre_controller.cc.o.d"
  "/root/repo/src/runahead/reconvergence_stack.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/reconvergence_stack.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/reconvergence_stack.cc.o.d"
  "/root/repo/src/runahead/stride_detector.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/stride_detector.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/stride_detector.cc.o.d"
  "/root/repo/src/runahead/subthread.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/subthread.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/subthread.cc.o.d"
  "/root/repo/src/runahead/taint_tracker.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/taint_tracker.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/taint_tracker.cc.o.d"
  "/root/repo/src/runahead/vr_controller.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/vr_controller.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/vr_controller.cc.o.d"
  "/root/repo/src/runahead/vrat.cc" "src/CMakeFiles/dvr_runahead.dir/runahead/vrat.cc.o" "gcc" "src/CMakeFiles/dvr_runahead.dir/runahead/vrat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
