# Empty compiler generated dependencies file for dvr_runahead.
# This may be replaced when dependencies are built.
