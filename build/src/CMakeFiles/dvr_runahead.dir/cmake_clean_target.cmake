file(REMOVE_RECURSE
  "libdvr_runahead.a"
)
