file(REMOVE_RECURSE
  "CMakeFiles/dvr_runahead.dir/runahead/discovery.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/discovery.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/dvr_controller.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/dvr_controller.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/hw_overhead.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/hw_overhead.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/loop_bound.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/loop_bound.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/oracle.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/oracle.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/pre_controller.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/pre_controller.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/reconvergence_stack.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/reconvergence_stack.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/stride_detector.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/stride_detector.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/subthread.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/subthread.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/taint_tracker.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/taint_tracker.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/vr_controller.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/vr_controller.cc.o.d"
  "CMakeFiles/dvr_runahead.dir/runahead/vrat.cc.o"
  "CMakeFiles/dvr_runahead.dir/runahead/vrat.cc.o.d"
  "libdvr_runahead.a"
  "libdvr_runahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvr_runahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
