file(REMOVE_RECURSE
  "libdvr_mem.a"
)
