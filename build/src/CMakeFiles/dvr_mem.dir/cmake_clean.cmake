file(REMOVE_RECURSE
  "CMakeFiles/dvr_mem.dir/mem/cache.cc.o"
  "CMakeFiles/dvr_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/dvr_mem.dir/mem/dram.cc.o"
  "CMakeFiles/dvr_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/dvr_mem.dir/mem/imp_prefetcher.cc.o"
  "CMakeFiles/dvr_mem.dir/mem/imp_prefetcher.cc.o.d"
  "CMakeFiles/dvr_mem.dir/mem/memory_system.cc.o"
  "CMakeFiles/dvr_mem.dir/mem/memory_system.cc.o.d"
  "CMakeFiles/dvr_mem.dir/mem/mshr.cc.o"
  "CMakeFiles/dvr_mem.dir/mem/mshr.cc.o.d"
  "CMakeFiles/dvr_mem.dir/mem/sim_memory.cc.o"
  "CMakeFiles/dvr_mem.dir/mem/sim_memory.cc.o.d"
  "CMakeFiles/dvr_mem.dir/mem/stride_prefetcher.cc.o"
  "CMakeFiles/dvr_mem.dir/mem/stride_prefetcher.cc.o.d"
  "libdvr_mem.a"
  "libdvr_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvr_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
