# Empty compiler generated dependencies file for dvr_mem.
# This may be replaced when dependencies are built.
