file(REMOVE_RECURSE
  "libdvr_common.a"
)
