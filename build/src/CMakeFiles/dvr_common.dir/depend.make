# Empty dependencies file for dvr_common.
# This may be replaced when dependencies are built.
