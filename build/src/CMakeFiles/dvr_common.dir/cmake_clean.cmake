file(REMOVE_RECURSE
  "CMakeFiles/dvr_common.dir/common/rng.cc.o"
  "CMakeFiles/dvr_common.dir/common/rng.cc.o.d"
  "CMakeFiles/dvr_common.dir/common/stats.cc.o"
  "CMakeFiles/dvr_common.dir/common/stats.cc.o.d"
  "libdvr_common.a"
  "libdvr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
