# Empty compiler generated dependencies file for dvr_graph.
# This may be replaced when dependencies are built.
