file(REMOVE_RECURSE
  "CMakeFiles/dvr_graph.dir/graph/csr_graph.cc.o"
  "CMakeFiles/dvr_graph.dir/graph/csr_graph.cc.o.d"
  "CMakeFiles/dvr_graph.dir/graph/edge_list_io.cc.o"
  "CMakeFiles/dvr_graph.dir/graph/edge_list_io.cc.o.d"
  "CMakeFiles/dvr_graph.dir/graph/generators.cc.o"
  "CMakeFiles/dvr_graph.dir/graph/generators.cc.o.d"
  "libdvr_graph.a"
  "libdvr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
