file(REMOVE_RECURSE
  "libdvr_graph.a"
)
