# Empty compiler generated dependencies file for dvr_sim.
# This may be replaced when dependencies are built.
