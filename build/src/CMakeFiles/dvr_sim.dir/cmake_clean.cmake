file(REMOVE_RECURSE
  "CMakeFiles/dvr_sim.dir/sim/config.cc.o"
  "CMakeFiles/dvr_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/dvr_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/dvr_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/dvr_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/dvr_sim.dir/sim/simulator.cc.o.d"
  "libdvr_sim.a"
  "libdvr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
