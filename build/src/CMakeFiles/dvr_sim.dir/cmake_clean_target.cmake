file(REMOVE_RECURSE
  "libdvr_sim.a"
)
