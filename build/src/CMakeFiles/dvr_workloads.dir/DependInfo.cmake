
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/dataset.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/dataset.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/dataset.cc.o.d"
  "/root/repo/src/workloads/gap_bc.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/gap_bc.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/gap_bc.cc.o.d"
  "/root/repo/src/workloads/gap_bfs.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/gap_bfs.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/gap_bfs.cc.o.d"
  "/root/repo/src/workloads/gap_cc.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/gap_cc.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/gap_cc.cc.o.d"
  "/root/repo/src/workloads/gap_pr.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/gap_pr.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/gap_pr.cc.o.d"
  "/root/repo/src/workloads/gap_sssp.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/gap_sssp.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/gap_sssp.cc.o.d"
  "/root/repo/src/workloads/hpcdb_camel.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_camel.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_camel.cc.o.d"
  "/root/repo/src/workloads/hpcdb_graph500.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_graph500.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_graph500.cc.o.d"
  "/root/repo/src/workloads/hpcdb_hashjoin.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_hashjoin.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_hashjoin.cc.o.d"
  "/root/repo/src/workloads/hpcdb_kangaroo.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_kangaroo.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_kangaroo.cc.o.d"
  "/root/repo/src/workloads/hpcdb_nas_cg.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_nas_cg.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_nas_cg.cc.o.d"
  "/root/repo/src/workloads/hpcdb_nas_is.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_nas_is.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_nas_is.cc.o.d"
  "/root/repo/src/workloads/hpcdb_random_access.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_random_access.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/hpcdb_random_access.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/dvr_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/dvr_workloads.dir/workloads/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
