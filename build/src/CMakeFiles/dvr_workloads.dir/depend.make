# Empty dependencies file for dvr_workloads.
# This may be replaced when dependencies are built.
