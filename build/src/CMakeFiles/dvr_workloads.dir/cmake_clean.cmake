file(REMOVE_RECURSE
  "CMakeFiles/dvr_workloads.dir/workloads/dataset.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/dataset.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/gap_bc.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/gap_bc.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/gap_bfs.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/gap_bfs.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/gap_cc.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/gap_cc.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/gap_pr.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/gap_pr.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/gap_sssp.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/gap_sssp.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_camel.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_camel.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_graph500.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_graph500.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_hashjoin.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_hashjoin.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_kangaroo.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_kangaroo.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_nas_cg.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_nas_cg.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_nas_is.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_nas_is.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_random_access.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/hpcdb_random_access.cc.o.d"
  "CMakeFiles/dvr_workloads.dir/workloads/registry.cc.o"
  "CMakeFiles/dvr_workloads.dir/workloads/registry.cc.o.d"
  "libdvr_workloads.a"
  "libdvr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
