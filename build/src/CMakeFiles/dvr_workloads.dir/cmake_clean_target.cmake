file(REMOVE_RECURSE
  "libdvr_workloads.a"
)
