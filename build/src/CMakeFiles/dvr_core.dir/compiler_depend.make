# Empty compiler generated dependencies file for dvr_core.
# This may be replaced when dependencies are built.
