file(REMOVE_RECURSE
  "libdvr_core.a"
)
