
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/branch_predictor.cc" "src/CMakeFiles/dvr_core.dir/core/branch_predictor.cc.o" "gcc" "src/CMakeFiles/dvr_core.dir/core/branch_predictor.cc.o.d"
  "/root/repo/src/core/ooo_core.cc" "src/CMakeFiles/dvr_core.dir/core/ooo_core.cc.o" "gcc" "src/CMakeFiles/dvr_core.dir/core/ooo_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
