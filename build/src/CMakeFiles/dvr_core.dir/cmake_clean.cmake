file(REMOVE_RECURSE
  "CMakeFiles/dvr_core.dir/core/branch_predictor.cc.o"
  "CMakeFiles/dvr_core.dir/core/branch_predictor.cc.o.d"
  "CMakeFiles/dvr_core.dir/core/ooo_core.cc.o"
  "CMakeFiles/dvr_core.dir/core/ooo_core.cc.o.d"
  "libdvr_core.a"
  "libdvr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
