
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/dvr_isa.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/dvr_isa.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/dvr_isa.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/dvr_isa.dir/isa/program.cc.o.d"
  "/root/repo/src/isa/program_builder.cc" "src/CMakeFiles/dvr_isa.dir/isa/program_builder.cc.o" "gcc" "src/CMakeFiles/dvr_isa.dir/isa/program_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
