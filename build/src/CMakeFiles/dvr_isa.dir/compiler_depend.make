# Empty compiler generated dependencies file for dvr_isa.
# This may be replaced when dependencies are built.
