file(REMOVE_RECURSE
  "CMakeFiles/dvr_isa.dir/isa/instruction.cc.o"
  "CMakeFiles/dvr_isa.dir/isa/instruction.cc.o.d"
  "CMakeFiles/dvr_isa.dir/isa/program.cc.o"
  "CMakeFiles/dvr_isa.dir/isa/program.cc.o.d"
  "CMakeFiles/dvr_isa.dir/isa/program_builder.cc.o"
  "CMakeFiles/dvr_isa.dir/isa/program_builder.cc.o.d"
  "libdvr_isa.a"
  "libdvr_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvr_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
