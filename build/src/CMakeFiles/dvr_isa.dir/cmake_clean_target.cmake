file(REMOVE_RECURSE
  "libdvr_isa.a"
)
