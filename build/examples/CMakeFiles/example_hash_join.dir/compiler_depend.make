# Empty compiler generated dependencies file for example_hash_join.
# This may be replaced when dependencies are built.
