file(REMOVE_RECURSE
  "CMakeFiles/example_hash_join.dir/hash_join.cpp.o"
  "CMakeFiles/example_hash_join.dir/hash_join.cpp.o.d"
  "example_hash_join"
  "example_hash_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hash_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
