
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/dvr_run.cc" "tools/CMakeFiles/dvr_run.dir/dvr_run.cc.o" "gcc" "tools/CMakeFiles/dvr_run.dir/dvr_run.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_runahead.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
