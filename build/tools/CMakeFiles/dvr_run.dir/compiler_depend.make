# Empty compiler generated dependencies file for dvr_run.
# This may be replaced when dependencies are built.
