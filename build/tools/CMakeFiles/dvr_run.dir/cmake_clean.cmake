file(REMOVE_RECURSE
  "CMakeFiles/dvr_run.dir/dvr_run.cc.o"
  "CMakeFiles/dvr_run.dir/dvr_run.cc.o.d"
  "dvr_run"
  "dvr_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvr_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
